"""Overload admission control at a site gateway.

Under a flash crowd (or a neighbour's blackout spilling its load
here) a site can accept more work than it can finish before the
deadlines blow — the classic congestion collapse the paper's economy
section gestures at.  The :class:`AdmissionController` is the
gateway-side answer: a queue-depth / arrival-rate load shedder with
per-tenant priority tiers, plus a preemption signal that lets the
scenario reclaim speculative/pooled clones when pressure builds.

Shedding is *accounting, not failure*: a shed request is recorded in
the :class:`~repro.analysis.streaming.WorkloadSummary`'s ``shed``
counter and the run keeps going — availability over the *served*
stream is what the megachaos ladder reports.

The controller is pure bookkeeping — no RNG, no simulation events —
so a disabled controller (all knobs ``None``, the default) cannot
perturb golden trajectories, and an enabled one is a deterministic
function of the arrival sequence, which keeps the 1-vs-N-shard
fingerprint contract intact.

**Priority tiers**: ``priorities`` maps tenant name → tier, lower
tier = higher priority (unmapped tenants get tier 0).  A tier-``t``
tenant is shed once the site's in-flight depth reaches
``shed_depth // (t + 1)`` — low-priority tenants hit their ceiling
first, and tier 0 only sheds at the full ``shed_depth``, so a
starving crowd can never push interactive users off the site (the
fairness property the tests pin).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["AdmissionController"]


class AdmissionController:
    """Queue-depth / arrival-rate shedding with priority tiers."""

    __slots__ = (
        "shed_depth",
        "shed_rate_per_s",
        "rate_window_s",
        "preempt_depth",
        "priorities",
        "in_flight",
        "peak_in_flight",
        "shed_by_tenant",
        "preempt_signals",
        "_arrivals",
        "_preempt_armed",
    )

    def __init__(
        self,
        *,
        shed_depth: Optional[int] = None,
        shed_rate_per_s: Optional[float] = None,
        rate_window_s: float = 30.0,
        preempt_depth: Optional[int] = None,
        priorities: Optional[Dict[str, int]] = None,
    ):
        if shed_depth is not None and shed_depth < 1:
            raise ValueError("shed_depth must be >= 1")
        if shed_rate_per_s is not None and shed_rate_per_s <= 0:
            raise ValueError("shed_rate_per_s must be positive")
        if rate_window_s <= 0:
            raise ValueError("rate_window_s must be positive")
        if preempt_depth is not None and preempt_depth < 1:
            raise ValueError("preempt_depth must be >= 1")
        self.shed_depth = shed_depth
        self.shed_rate_per_s = shed_rate_per_s
        self.rate_window_s = rate_window_s
        self.preempt_depth = preempt_depth
        self.priorities = dict(priorities or {})
        for tenant, tier in self.priorities.items():
            if tier < 0:
                raise ValueError(
                    f"tenant {tenant!r} has negative priority tier"
                )
        #: Requests currently being served (between begin and done).
        self.in_flight = 0
        self.peak_in_flight = 0
        self.shed_by_tenant: Dict[str, int] = {}
        self.preempt_signals = 0
        #: Offered-arrival times inside the sliding rate window.
        self._arrivals: Deque[float] = deque()
        self._preempt_armed = True

    @property
    def enabled(self) -> bool:
        return (
            self.shed_depth is not None
            or self.shed_rate_per_s is not None
            or self.preempt_depth is not None
        )

    def tier(self, tenant: str) -> int:
        return self.priorities.get(tenant, 0)

    def depth_limit(self, tenant: str) -> Optional[int]:
        """This tenant's in-flight ceiling (None = unlimited)."""
        if self.shed_depth is None:
            return None
        return max(1, self.shed_depth // (self.tier(tenant) + 1))

    # -- the admission decision ---------------------------------------------
    def admit(self, tenant: str, now: float) -> bool:
        """Admit or shed one offered request at time ``now``.

        Counts every offered arrival toward the rate window (shed or
        not — the *offered* load is the overload signal), then sheds
        when the tenant's depth ceiling is hit, or when the offered
        rate exceeds ``shed_rate_per_s`` and the tenant is not tier 0
        (rate shedding protects the highest tier outright).
        """
        if self.shed_rate_per_s is not None:
            self._arrivals.append(now)
            cutoff = now - self.rate_window_s
            while self._arrivals and self._arrivals[0] < cutoff:
                self._arrivals.popleft()
        limit = self.depth_limit(tenant)
        if limit is not None and self.in_flight >= limit:
            self._shed(tenant)
            return False
        if (
            self.shed_rate_per_s is not None
            and self.tier(tenant) > 0
            and len(self._arrivals)
            > self.shed_rate_per_s * self.rate_window_s
        ):
            self._shed(tenant)
            return False
        return True

    def _shed(self, tenant: str) -> None:
        self.shed_by_tenant[tenant] = (
            self.shed_by_tenant.get(tenant, 0) + 1
        )

    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_tenant.values())

    # -- in-flight depth tracking -------------------------------------------
    def begin(self) -> None:
        """An admitted request started being served."""
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight

    def done(self) -> None:
        """A served request finished (ok or failed)."""
        if self.in_flight <= 0:
            raise RuntimeError("done() without matching begin()")
        self.in_flight -= 1
        if (
            self.preempt_depth is not None
            and self.in_flight < self.preempt_depth
        ):
            self._preempt_armed = True

    # -- preemption signal ---------------------------------------------------
    def maybe_preempt(self) -> bool:
        """True once per pressure episode when depth crosses
        ``preempt_depth`` — the caller reclaims speculative/pooled
        clones; the signal re-arms after depth drops back below."""
        if self.preempt_depth is None:
            return False
        if self.in_flight >= self.preempt_depth and self._preempt_armed:
            self._preempt_armed = False
            self.preempt_signals += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<AdmissionController depth={self.in_flight}"
            f" shed={self.total_shed}"
            f" preempts={self.preempt_signals}>"
        )
