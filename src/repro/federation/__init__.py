"""Federated multi-site control plane.

The paper's §3.1 architecture scales plant selection "directly, or
indirectly through VMBrokers"; this package builds the *indirect*
story at grid scale: an N-site grid where every site owns its own
VMShop, warehouse replica, cluster and vnet address block, sites are
federated through the existing :class:`~repro.shop.broker.VMBroker`
tree, and the control plane is sharded —

* :mod:`repro.federation.addressing` — hierarchical vnet allocation
  (site prefix → subnet block → host range) so guest addresses stay
  globally unique past the flat ``192.168/16`` ceiling;
* :mod:`repro.federation.registry` — a partitioned service registry:
  one :class:`~repro.shop.registry.ServiceRegistry` shard per site
  behind a thin router whose equality-key prefilter skips shards that
  provably cannot match a discover query;
* :mod:`repro.federation.site` — one site's wiring: rack-level broker
  hierarchy in front of the site shop, the site's subnet block, and
  the spill-over gateway; plus :func:`build_federated_grid` for
  whole-grid single-kernel runs;
* :mod:`repro.federation.gateway` — site-local-first placement with
  cross-site spill-over bids (threshold + deadline from
  :class:`~repro.faults.recovery.RecoveryPolicy`);
* :mod:`repro.federation.scenario` — the ``federation`` shard
  scenario: one site per kernel :class:`~repro.sim.kernel.Environment`
  on the PR 6 shard runner, cross-site bids/creates crossing
  :class:`~repro.sim.network.BoundaryLink`\\ s with lookahead.
"""

from repro.federation.addressing import (
    HierarchicalAddressPlan,
    SubnetBlock,
)
from repro.federation.admission import AdmissionController
from repro.federation.gateway import FederationGateway
from repro.federation.registry import FederatedRegistry
from repro.federation.site import (
    FederatedGrid,
    FederatedSite,
    build_federated_grid,
    build_federated_site,
)

__all__ = [
    "AdmissionController",
    "HierarchicalAddressPlan",
    "SubnetBlock",
    "FederatedRegistry",
    "FederationGateway",
    "FederatedSite",
    "FederatedGrid",
    "build_federated_site",
    "build_federated_grid",
]
