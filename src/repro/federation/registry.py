"""Partitioned service registry: one shard per site, a thin router.

A single grid-wide :class:`~repro.shop.registry.ServiceRegistry`
becomes the control-plane bottleneck at 10k plants: every discover
walks (or at best index-prunes within) one dictionary holding every
site's services, and every publish contends on the same index.  Here
each site keeps its *own* registry shard — publishes stay site-local,
exactly the state a per-site kernel shard owns — and the
:class:`FederatedRegistry` router fans a discover out only to shards
whose :meth:`~repro.shop.registry.ServiceRegistry.may_match`
equality-key prefilter says the query could match.  A query like
``kind="vmplant", 'other.os == "bsd"'`` therefore touches only the
shards that actually publish BSD plants; the rest are skipped without
evaluating a single description.

Result order is the contract that makes the router drop-in: entries
come back grouped by ascending site, insertion-ordered within each
shard — identical to one merged registry published in (site, local)
order, which is what the randomized equivalence tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.core.classad import Expression
from repro.core.errors import ShopError
from repro.shop.registry import ServiceEntry, ServiceRegistry

__all__ = ["FederatedRegistry"]


class FederatedRegistry:
    """Routes registry operations across per-site shards."""

    __slots__ = ("shards", "_site_of", "shards_queried", "shards_pruned")

    def __init__(self) -> None:
        self.shards: Dict[int, ServiceRegistry] = {}
        self._site_of: Dict[str, int] = {}
        #: Shards whose entries a discover actually evaluated.
        self.shards_queried = 0
        #: Shards skipped because ``may_match`` proved no entry fits.
        self.shards_pruned = 0

    # -- shard membership ---------------------------------------------------
    def add_site(
        self, site: int, registry: Optional[ServiceRegistry] = None
    ) -> ServiceRegistry:
        """Attach (or create) the shard of ``site``."""
        if site in self.shards:
            raise ShopError(f"site {site} already federated")
        shard = registry if registry is not None else ServiceRegistry()
        self.shards[site] = shard
        return shard

    def shard(self, site: int) -> ServiceRegistry:
        try:
            return self.shards[site]
        except KeyError:
            raise ShopError(f"site {site} not federated") from None

    # -- publication --------------------------------------------------------
    def publish(
        self,
        site: int,
        name: str,
        kind: str,
        binding: Any,
        description: Optional[Any] = None,
    ) -> ServiceEntry:
        """Publish into the owning site's shard.

        Names are grid-unique: republishing a name from a *different*
        site is rejected rather than silently shadowed.
        """
        owner = self._owner(name)
        if owner is not None and owner != site:
            raise ShopError(
                f"service {name!r} already published by site {owner}"
            )
        entry = self.shard(site).publish(name, kind, binding, description)
        self._site_of[name] = site
        return entry

    def unpublish(self, name: str) -> None:
        site = self._owner(name)
        if site is None:
            raise ShopError(f"service {name!r} not published")
        self._site_of.pop(name, None)
        self.shards[site].unpublish(name)

    def _owner(self, name: str) -> Optional[int]:
        """The site shard holding ``name``.

        Grid-mode sites publish straight into their own shard (the
        shop's ``register_plant`` path), bypassing the router — so a
        stale or missing ``_site_of`` entry falls back to a site-order
        scan and is cached for the next lookup.
        """
        site = self._site_of.get(name)
        if site is not None and name in self.shards[site]:
            return site
        for site in sorted(self.shards):
            if name in self.shards[site]:
                self._site_of[name] = site
                return site
        self._site_of.pop(name, None)
        return None

    # -- discovery ----------------------------------------------------------
    def discover(
        self,
        kind: Optional[str] = None,
        requirements: Optional[Union[str, Expression]] = None,
        prefilter: bool = True,
    ) -> List[ServiceEntry]:
        """Federated discover: prefilter shards, then query survivors.

        ``requirements`` is compiled once and shared across shards.
        ``prefilter=False`` disables both the shard-level skip and
        every shard's own index pruning (the exhaustive reference
        path).
        """
        expr: Optional[Expression] = None
        if requirements is not None:
            expr = (
                requirements
                if isinstance(requirements, Expression)
                else Expression(requirements)
            )
        results: List[ServiceEntry] = []
        for site in sorted(self.shards):
            shard = self.shards[site]
            if prefilter and not shard.may_match(kind, expr):
                self.shards_pruned += 1
                continue
            self.shards_queried += 1
            results.extend(shard.discover(kind, expr, prefilter=prefilter))
        return results

    def bind(self, name: str) -> Any:
        site = self._owner(name)
        if site is None:
            raise ShopError(f"service {name!r} not published")
        return self.shards[site].bind(name)

    def site_of(self, name: str) -> int:
        """Which site published this service?"""
        site = self._owner(name)
        if site is None:
            raise ShopError(f"service {name!r} not published")
        return site

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    def __contains__(self, name: str) -> bool:
        return self._owner(name) is not None

    def __repr__(self) -> str:
        return (
            f"<FederatedRegistry sites={len(self.shards)} "
            f"services={len(self)} queried={self.shards_queried} "
            f"pruned={self.shards_pruned}>"
        )
