"""One federated site, and the single-kernel grid of them.

A :class:`FederatedSite` is the classic SC'04 testbed plus the three
federation layers: a rack-level :class:`~repro.shop.broker.VMBroker`
tier in front of the site shop (the shop bids against ~⌈plants/rack⌉
brokers instead of every plant), the site's
:class:`~repro.federation.addressing.SubnetBlock` feeding every plant
pool globally unique subnets, and a
:class:`~repro.federation.gateway.FederationGateway` deciding when a
request spills to another site.

Two assembly modes share :func:`build_federated_site`:

* **sharded** — the ``federation`` shard scenario builds one site per
  kernel :class:`~repro.sim.kernel.Environment` in its own worker;
  cross-site traffic rides :class:`~repro.sim.network.BoundaryLink`\\ s
  (see :mod:`repro.federation.scenario`).  This is the 10k-plant path.
* **grid** — :func:`build_federated_grid` packs every site into ONE
  environment with a :class:`~repro.federation.registry.FederatedRegistry`
  over the per-site shards and gateways wired to each other directly;
  small, fully synchronous, what the unit tests and the registry
  microbench drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.faults.recovery import RecoveryPolicy
from repro.federation.addressing import HierarchicalAddressPlan, SubnetBlock
from repro.federation.gateway import FederationGateway
from repro.federation.registry import FederatedRegistry
from repro.sim.cluster import Testbed, build_testbed
from repro.sim.kernel import Environment
from repro.sim.shard.scenarios import site_seed

__all__ = [
    "FederatedSite",
    "FederatedGrid",
    "build_federated_site",
    "build_federated_grid",
]

#: Default rack-broker width: 8 plants (one paper cluster) per rack.
DEFAULT_RACK_SIZE = 8


@dataclass
class FederatedSite:
    """Handle to one assembled site of the federation."""

    site: int
    bed: Testbed
    gateway: FederationGateway
    block: SubnetBlock

    @property
    def shop(self):
        return self.bed.shop

    @property
    def racks(self):
        return self.bed.racks


def build_federated_site(
    site: int,
    sites: int,
    seed: int = 0,
    n_plants: int = 8,
    rack_size: Optional[int] = DEFAULT_RACK_SIZE,
    plan: Optional[HierarchicalAddressPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    env: Optional[Environment] = None,
    networks_per_plant: int = 4,
    **testbed_kw,
) -> FederatedSite:
    """Assemble site ``site`` of an ``sites``-site federation.

    The site seed, name prefix and subnet block are all pure
    functions of ``(seed, site, sites)`` so a forked worker rebuilds
    exactly the site the coordinator planned.  Extra keyword
    arguments pass through to
    :func:`~repro.sim.cluster.build_testbed`.
    """
    plan = plan or HierarchicalAddressPlan(sites)
    block = plan.block(site)
    needed = n_plants * networks_per_plant
    if needed > block.size:
        raise ValueError(
            f"site {site}: {n_plants} plants x {networks_per_plant} "
            f"subnets exceed the site block ({block.size} subnets); "
            f"use fewer sites or a larger subnets_per_site"
        )
    bed = build_testbed(
        seed=site_seed(seed, site),
        n_plants=n_plants,
        env=env,
        rack_size=rack_size,
        address_block=block,
        name_prefix=f"site{site}-",
        site=site,
        recovery=recovery,
        networks_per_plant=networks_per_plant,
        **testbed_kw,
    )
    gateway = FederationGateway(site, bed.shop, policy=recovery)
    return FederatedSite(site=site, bed=bed, gateway=gateway, block=block)


@dataclass
class FederatedGrid:
    """All sites of a grid-mode federation in one kernel."""

    env: Environment
    sites: List[FederatedSite]
    registry: FederatedRegistry
    plan: HierarchicalAddressPlan

    def site(self, i: int) -> FederatedSite:
        return self.sites[i]

    def run(self, generator):
        """Drive one process generator to completion on the env."""
        proc = self.env.process(generator)
        return self.env.run(until=proc)


def build_federated_grid(
    sites: int,
    seed: int = 0,
    n_plants: int = 8,
    rack_size: Optional[int] = DEFAULT_RACK_SIZE,
    recovery: Optional[RecoveryPolicy] = None,
    **site_kw,
) -> FederatedGrid:
    """Build every site in one environment, fully wired.

    Each site's own :class:`~repro.shop.registry.ServiceRegistry`
    becomes one shard of the grid :class:`FederatedRegistry`, and
    every gateway gets every *other* gateway as a spill-over remote
    (in ascending site order — the deterministic bid order).
    """
    if sites <= 0:
        raise ValueError("sites must be positive")
    env = Environment()
    plan = HierarchicalAddressPlan(sites)
    fed = FederatedRegistry()
    built: List[FederatedSite] = []
    for s in range(sites):
        fsite = build_federated_site(
            s,
            sites,
            seed=seed,
            n_plants=n_plants,
            rack_size=rack_size,
            plan=plan,
            recovery=recovery,
            env=env,
            **site_kw,
        )
        fed.add_site(s, registry=fsite.bed.registry)
        built.append(fsite)
    for fsite in built:
        for other in built:
            if other is not fsite:
                fsite.gateway.add_remote(other.gateway)
    return FederatedGrid(env=env, sites=built, registry=fed, plan=plan)
