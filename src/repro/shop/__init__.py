"""The VMShop front-end service and its bidding machinery.

The shop is the client's single logical point of contact (Section
3.1): it accepts Create/Query/Destroy requests, discovers plants
through a registry (:mod:`repro.shop.registry`), collects cost bids
(:mod:`repro.shop.bidding`, optionally through
:mod:`repro.shop.broker` aggregators), and routes service calls over a
latency-charging transport (:mod:`repro.shop.protocol`).
"""

from repro.shop.bidding import Bid, BidCollector
from repro.shop.broker import VMBroker
from repro.shop.protocol import (
    Transport,
    service_request_from_xml,
    service_request_to_xml,
)
from repro.shop.registry import ServiceRegistry
from repro.shop.vmshop import VMShop

__all__ = [
    "Bid",
    "BidCollector",
    "ServiceRegistry",
    "Transport",
    "VMBroker",
    "VMShop",
    "service_request_from_xml",
    "service_request_to_xml",
]
