"""UDDI-style service registry: publish, discover, bind.

The architecture (Figure 1) has services publish themselves to a
registry that clients use for dynamic discovery and binding.  This
registry stores service descriptions as classads so discovery can
filter with the same matchmaking expressions used elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.classad import ClassAd
from repro.core.errors import ShopError

__all__ = ["ServiceEntry", "ServiceRegistry"]


@dataclass(frozen=True)
class ServiceEntry:
    """One published service."""

    name: str
    kind: str
    #: Binding/location description (WSDL analogue) — here, the
    #: in-process service object itself.
    binding: Any
    description: ClassAd


class ServiceRegistry:
    """Site-wide registry of shops, brokers and plants."""

    def __init__(self) -> None:
        self._entries: Dict[str, ServiceEntry] = {}

    def publish(
        self,
        name: str,
        kind: str,
        binding: Any,
        description: Optional[ClassAd] = None,
    ) -> ServiceEntry:
        """Publish (or replace) a service entry."""
        entry = ServiceEntry(
            name=name,
            kind=kind,
            binding=binding,
            description=description or ClassAd({"name": name, "kind": kind}),
        )
        self._entries[name] = entry
        return entry

    def unpublish(self, name: str) -> None:
        """Remove a service."""
        if name not in self._entries:
            raise ShopError(f"service {name!r} not published")
        del self._entries[name]

    def discover(
        self, kind: Optional[str] = None, requirements: Optional[str] = None
    ) -> List[ServiceEntry]:
        """Find services, optionally filtered by kind and a classad
        requirements expression evaluated against each description."""
        results = []
        query: Optional[ClassAd] = None
        if requirements is not None:
            query = ClassAd()
            query.set_expression("requirements", requirements)
        for entry in self._entries.values():
            if kind is not None and entry.kind != kind:
                continue
            if query is not None and not query.matches(entry.description):
                continue
            results.append(entry)
        return results

    def bind(self, name: str) -> Any:
        """Obtain the binding for a published service."""
        try:
            return self._entries[name].binding
        except KeyError:
            raise ShopError(f"service {name!r} not published") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
