"""UDDI-style service registry: publish, discover, bind.

The architecture (Figure 1) has services publish themselves to a
registry that clients use for dynamic discovery and binding.  This
registry stores service descriptions as classads so discovery can
filter with the same matchmaking expressions used elsewhere.

Discovery keeps an **attribute index** over published descriptions:
each indexed attribute (:data:`INDEXED_ATTRIBUTES`) maps
equality-normalized values (:func:`repro.core.classad.equality_key`)
to the names publishing them, with Expression-valued attributes in a
separate always-candidate set.  A query's compiled requirements
expression exposes its top-level ``attr == literal`` conjuncts
(:meth:`Expression.equality_constraints`); intersecting their buckets
prunes entries for which some conjunct provably evaluates to False or
UNDEFINED — so the conjunction can never be True — before any full
``matches()`` evaluation runs.  Pruned entries are *not* evaluated,
so (exactly like ``&&`` short-circuit) an expression that would raise
on a pruned entry no longer raises; ``prefilter=False`` restores the
exhaustive scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Union

from repro.core.classad import UNDEFINED, ClassAd, Expression, equality_key
from repro.core.errors import ShopError

__all__ = ["ServiceEntry", "ServiceRegistry", "INDEXED_ATTRIBUTES"]

#: Description attributes bucketed by equality-normalized value.
INDEXED_ATTRIBUTES = ("kind", "name", "os", "vm_type")

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class ServiceEntry:
    """One published service."""

    name: str
    kind: str
    #: Binding/location description (WSDL analogue) — here, the
    #: in-process service object itself.
    binding: Any
    description: ClassAd


class ServiceRegistry:
    """Site-wide registry of shops, brokers and plants."""

    __slots__ = ("_entries", "_kind_names", "_attr_buckets", "_attr_dynamic")

    def __init__(self) -> None:
        self._entries: Dict[str, ServiceEntry] = {}
        self._kind_names: Dict[str, Set[str]] = {}
        self._attr_buckets: Dict[str, Dict[tuple, Set[str]]] = {
            attr: {} for attr in INDEXED_ATTRIBUTES
        }
        self._attr_dynamic: Dict[str, Set[str]] = {
            attr: set() for attr in INDEXED_ATTRIBUTES
        }

    # -- index maintenance --------------------------------------------------
    def _index(self, entry: ServiceEntry) -> None:
        self._kind_names.setdefault(entry.kind, set()).add(entry.name)
        attrs = entry.description._attrs
        for attr in INDEXED_ATTRIBUTES:
            raw = attrs.get(attr, UNDEFINED)
            if isinstance(raw, Expression):
                # Evaluates per-query: always a candidate.
                self._attr_dynamic[attr].add(entry.name)
                continue
            key = equality_key(raw)
            if key is not None:
                self._attr_buckets[attr].setdefault(key, set()).add(
                    entry.name
                )
            # Missing/list-valued attributes stay out of every bucket:
            # ``attr == literal`` is then UNDEFINED/False, so pruning
            # such entries is sound.

    def _unindex(self, entry: ServiceEntry) -> None:
        names = self._kind_names.get(entry.kind)
        if names is not None:
            names.discard(entry.name)
            if not names:
                del self._kind_names[entry.kind]
        for attr in INDEXED_ATTRIBUTES:
            self._attr_dynamic[attr].discard(entry.name)
            buckets = self._attr_buckets[attr]
            for key, members in list(buckets.items()):
                members.discard(entry.name)
                if not members:
                    del buckets[key]

    # -- publication ---------------------------------------------------------
    def publish(
        self,
        name: str,
        kind: str,
        binding: Any,
        description: Optional[ClassAd] = None,
    ) -> ServiceEntry:
        """Publish (or replace) a service entry."""
        entry = ServiceEntry(
            name=name,
            kind=kind,
            binding=binding,
            description=description or ClassAd({"name": name, "kind": kind}),
        )
        old = self._entries.get(name)
        if old is not None:
            self._unindex(old)
        self._entries[name] = entry
        self._index(entry)
        return entry

    def unpublish(self, name: str) -> None:
        """Remove a service."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise ShopError(f"service {name!r} not published")
        self._unindex(entry)

    # -- discovery ------------------------------------------------------------
    def _candidates(
        self, kind: Optional[str], expr: Optional[Expression]
    ) -> Optional[FrozenSet[str]]:
        """Names that may match, or None when nothing prunes.

        Only index-backed constraints narrow the set; anything else is
        left to full evaluation.
        """
        result: Optional[Set[str]] = None
        if kind is not None:
            result = set(self._kind_names.get(kind, _EMPTY))
        if expr is not None:
            for attr, scope_kind, key in expr.equality_constraints():
                if scope_kind == "self":
                    continue  # refers to the query ad, not descriptions
                if scope_kind == "bare" and attr == "requirements":
                    # A bare name resolves in the query ad first; the
                    # query defines ``requirements``, so the constraint
                    # does not reach the description.
                    continue
                if attr not in self._attr_buckets:
                    continue
                allowed = self._attr_buckets[attr].get(key, _EMPTY) | (
                    self._attr_dynamic[attr]
                )
                result = allowed if result is None else (result & allowed)
                if not result:
                    break
        return frozenset(result) if result is not None else None

    def may_match(
        self,
        kind: Optional[str] = None,
        requirements: Optional[Union[str, Expression]] = None,
    ) -> bool:
        """Cheap shard-level answer: could *any* entry match?

        False only when the attribute index **proves** every entry
        fails some equality conjunct (or no entry of ``kind`` exists)
        — exactly the soundness condition of the ``discover``
        prefilter, so a federated router may skip this shard entirely
        when this returns False.  True means "must evaluate", not
        "some entry matches".
        """
        if not self._entries:
            return False
        expr: Optional[Expression] = None
        if requirements is not None:
            expr = (
                requirements
                if isinstance(requirements, Expression)
                else Expression(requirements)
            )
        candidates = self._candidates(kind, expr)
        return candidates is None or bool(candidates)

    def discover(
        self,
        kind: Optional[str] = None,
        requirements: Optional[Union[str, Expression]] = None,
        prefilter: bool = True,
    ) -> List[ServiceEntry]:
        """Find services, optionally filtered by kind and a classad
        requirements expression evaluated against each description.

        ``requirements`` accepts pre-compiled :class:`Expression`
        objects as well as raw text (interned either way).
        ``prefilter=False`` disables index pruning and evaluates the
        expression against every published description (the reference
        path the equivalence tests compare against).
        """
        query: Optional[ClassAd] = None
        expr: Optional[Expression] = None
        if requirements is not None:
            expr = (
                requirements
                if isinstance(requirements, Expression)
                else Expression(requirements)
            )
            query = ClassAd()
            query["requirements"] = expr
        candidates = self._candidates(kind, expr) if prefilter else None
        results = []
        for name, entry in self._entries.items():
            if candidates is not None and name not in candidates:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if query is not None and not query.matches(entry.description):
                continue
            results.append(entry)
        return results

    def bind(self, name: str) -> Any:
        """Obtain the binding for a published service."""
        try:
            return self._entries[name].binding
        except KeyError:
            raise ShopError(f"service {name!r} not published") from None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
