"""Cost-bid collection and plant selection.

VMShop selects a plant "through a communication API and a binding
protocol that allows VMShop to request and collect bids containing
estimated VM creation costs" (Section 3.1).  Bids are collected from
all candidate plants in parallel over the transport; the cheapest bid
wins, with ties broken uniformly at random (the Section 3.4
illustration: "the VMShop picks one plant at random") from a named
deterministic stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.core.errors import ShopError
from repro.core.spec import CreateRequest
from repro.shop.protocol import Transport
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub

__all__ = ["Bid", "BidCollector"]


def _mark_defused(event) -> None:
    """Mark an abandoned bid process as observed (late failures pass)."""
    event.defused = True


@dataclass(frozen=True)
class Bid:
    """One plant's (or broker's) answer to an estimate request."""

    bidder_name: str
    cost: float
    #: The service object that will receive the create call.
    bidder: Any


class BidCollector:
    """Parallel bid collection + deterministic random tie-breaking."""

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        rng: Optional[RngHub] = None,
    ):
        self.env = env
        self.transport = transport
        self.rng = rng or RngHub(0)
        #: Lifetime counters (federation bids/sec accounting): bid
        #: collection rounds run, and individual bids gathered.
        self.collections = 0
        self.bids_collected = 0

    def collect(
        self,
        bidders: Sequence[Any],
        request: CreateRequest,
        deadline_s: Optional[float] = None,
    ) -> Generator:
        """Gather bids from every bidder concurrently.

        Bidders expose ``name`` and ``estimate(request) -> float|None``
        (plants and brokers both do); a bidder additionally exposing
        ``estimate_proc`` is driven through it, which lets a crashed
        plant *hang* the call instead of answering.  With
        ``deadline_s`` set, collection stops after that many seconds
        and still-pending bidders are simply left out of the result
        (their eventual answers — or failures — are defused).  Returns
        the list of successful bids in bidder order.
        """
        procs = []
        for bidder in bidders:
            proc_call = getattr(bidder, "estimate_proc", None)
            if proc_call is not None:
                handler = lambda c=proc_call: c(request)  # noqa: E731
            else:
                handler = lambda b=bidder: b.estimate(request)  # noqa: E731
            procs.append(self.env.process(self.transport.call(handler)))
        if procs:
            if deadline_s is None:
                yield self.env.all_of(procs)
            else:
                yield self.env.any_of(
                    [self.env.all_of(procs), self.env.timeout(deadline_s)]
                )
                for proc in procs:
                    if not proc.triggered:
                        # A late answer (or failure) from a hung bidder
                        # must not crash the kernel once we stop caring.
                        proc.callbacks.append(_mark_defused)
        bids: List[Bid] = []
        for bidder, proc in zip(bidders, procs):
            if not proc.triggered:
                continue
            cost = proc.value
            if cost is not None:
                bids.append(
                    Bid(bidder_name=bidder.name, cost=float(cost), bidder=bidder)
                )
        self.collections += 1
        self.bids_collected += len(bids)
        return bids

    def select(self, bids: Sequence[Bid]) -> Bid:
        """The winning bid: minimum cost, random among exact ties."""
        if not bids:
            raise ShopError("no plant bid for the request")
        best_cost = min(bid.cost for bid in bids)
        winners = [bid for bid in bids if bid.cost == best_cost]
        if len(winners) == 1:
            return winners[0]
        return self.rng.choice("bid-tie", winners)

    def rank(self, bids: Sequence[Bid]) -> List[Bid]:
        """Bids from best to worst (ties shuffled deterministically).

        Single pass: bids are grouped by cost, groups emitted in
        ascending cost order, and each tie group is shuffled by
        drawing from the ``bid-tie`` stream.  The draw sequence is
        pinned by the golden trajectories: it must consume the stream
        exactly as the former repeated ``select`` + ``remove`` loop
        did (one draw per emitted bid while a group has ties, no draw
        for the last member), so orderings are bit-identical while the
        per-element full scan over all remaining bids is gone.
        """
        groups: Dict[float, List[Bid]] = {}
        for bid in bids:
            groups.setdefault(bid.cost, []).append(bid)
        ordered: List[Bid] = []
        for cost in sorted(groups):
            group = groups[cost]
            while len(group) > 1:
                chosen = self.rng.choice("bid-tie", group)
                ordered.append(chosen)
                group.remove(chosen)
            ordered.append(group[0])
        return ordered
