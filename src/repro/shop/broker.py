"""VMBrokers: bid aggregation for scalable plant selection.

Section 3.1 allows VMShop to collect bids "directly, or indirectly
through VMBrokers".  A broker fronts a set of plants (e.g. one rack or
one administrative sub-domain): its estimate is the best bid among its
plants, and a create call is routed to whichever plant produced that
bid.  Brokers expose the same ``name``/``estimate``/``create`` surface
as plants, so shops can mix both freely — and brokers can front other
brokers, giving a bidding tree.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.core.errors import ShopError
from repro.core.spec import CreateRequest
from repro.plant.production import CloneMode

__all__ = ["VMBroker"]


class VMBroker:
    """Aggregates bids from a set of plants (or nested brokers)."""

    def __init__(self, name: str, plants: Sequence[Any] = ()):
        self.name = name
        self.plants: List[Any] = list(plants)

    def add_plant(self, plant: Any) -> None:
        """Register another plant (or broker) behind this broker."""
        self.plants.append(plant)

    def _best(
        self, request: CreateRequest
    ) -> "tuple[Optional[float], Optional[Any]]":
        """Best (cost, plant) for the request right now.

        Routing is keyed to the request being processed: the winner is
        computed per call and never parked in shared broker state, so
        interleaved estimate/create generators for different requests
        under concurrent load cannot clobber each other's routing (the
        former ``_last_winner`` attribute).
        """
        best_cost: Optional[float] = None
        best_plant: Optional[Any] = None
        for plant in self.plants:
            cost = plant.estimate(request)
            if cost is None:
                continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_plant = plant
        return best_cost, best_plant

    def estimate(self, request: CreateRequest) -> Optional[float]:
        """Best bid among fronted plants (None when all decline)."""
        cost, _ = self._best(request)
        return cost

    def create(
        self,
        request: CreateRequest,
        vmid: str,
        clone_mode: Optional[CloneMode] = None,
    ) -> Generator:
        """Route creation to the current best plant for the request."""
        # Re-estimate at create time: plant state may have moved since
        # the bid was collected.  The winner stays local to this call.
        _, plant = self._best(request)
        if plant is None:
            raise ShopError(
                f"broker {self.name}: no plant can host the request"
            )
        result = yield from plant.create(request, vmid, clone_mode)
        return result

    def abort_creation(self, vmid: str) -> List[str]:
        """Forward an abort to every fronted plant (each is idempotent).

        The shop cannot know which plant a broker routed the failed
        create to, so the broker fans the release out; at most one
        plant actually held state for ``vmid``.
        """
        released: List[str] = []
        for plant in self.plants:
            abort = getattr(plant, "abort_creation", None)
            if abort is not None:
                released.extend(abort(vmid))
        return released

    def query(self, vmid: str, attributes=()) -> Any:
        """Route a query to whichever fronted plant knows the VM."""
        for plant in self.plants:
            try:
                return plant.query(vmid, attributes)
            except Exception:
                continue
        raise ShopError(f"broker {self.name}: no plant knows {vmid!r}")

    def destroy(self, vmid: str, commit: bool = False, publish_as=None):
        """Route a destroy to whichever fronted plant hosts the VM."""
        for plant in self.plants:
            infosys = getattr(plant, "infosys", None)
            if infosys is not None and vmid in infosys:
                return plant.destroy(vmid, commit, publish_as)
            if isinstance(plant, VMBroker):
                try:
                    return plant.destroy(vmid, commit, publish_as)
                except ShopError:
                    continue
        raise ShopError(f"broker {self.name}: no plant hosts {vmid!r}")

    def __repr__(self) -> str:
        return f"<VMBroker {self.name} plants={len(self.plants)}>"
