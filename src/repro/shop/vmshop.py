"""The VMShop front-end service.

From the client's perspective the shop plays the system administrator
(Section 3.1): **create** finds and configures a machine, **query**
reports on it, **destroy** collects it.  The shop:

* round-trips create requests through their XML encoding (the
  prototype's service specification format);
* collects cost bids from its registered plants/brokers and picks the
  winner (cheapest, random among ties);
* assigns the site-unique VMID and remembers only the VMID → plant
  routing plus an optional classad *cache* — the authoritative classad
  lives in the plant's information system, which is what makes shop
  restarts cheap (:meth:`VMShop.recover` rebuilds the routing from the
  plants).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.core.classad import ClassAd
from repro.core.errors import DeadlineExceeded, ReproError, ShopError
from repro.core.spec import CreateRequest
from repro.faults.health import PlantHealth
from repro.faults.recovery import RecoveryPolicy
from repro.plant.production import CloneMode
from repro.shop.bidding import Bid, BidCollector
from repro.shop.protocol import (
    Transport,
    service_request_from_xml,
    service_request_to_xml,
)
from repro.shop.registry import ServiceRegistry
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub
from repro.sim.trace import trace

__all__ = ["VMShop"]


class VMShop:
    """Single logical point of contact for VM services."""

    def __init__(
        self,
        env: Environment,
        name: str = "vmshop",
        transport: Optional[Transport] = None,
        rng: Optional[RngHub] = None,
        registry: Optional[ServiceRegistry] = None,
        use_xml: bool = True,
        retry_other_plants: bool = False,
        cache_classads: bool = True,
        recovery: Optional[RecoveryPolicy] = None,
    ):
        self.env = env
        self.name = name
        self.rng = rng or RngHub(0)
        self.transport = transport or Transport(env, self.rng)
        self.registry = registry
        self.use_xml = use_xml
        #: On plant failure, fall through to the next-best bid?
        self.retry_other_plants = retry_other_plants
        self.cache_classads = cache_classads
        #: Deadline / backoff / quarantine knobs; the default policy
        #: has everything off and leaves create() byte-identical to
        #: the ladder's "surface" rung.
        self.recovery = recovery or RecoveryPolicy()
        #: Per-bidder circuit breakers (lazily created by name).
        self.health: Dict[str, PlantHealth] = {}
        self.collector = BidCollector(env, self.transport, self.rng)
        self.bidders: List[Any] = []
        self._route: Dict[str, Any] = {}
        self._cache: Dict[str, ClassAd] = {}
        self._seq = 0
        #: Creation log: (vmid, plant_name, ok) for experiments.
        self.creation_log: List[tuple] = []
        if registry is not None:
            registry.publish(name, "vmshop", self)

    # -- membership ---------------------------------------------------------
    def register_plant(self, plant: Any) -> None:
        """Add a plant or broker to the bidding set."""
        self.bidders.append(plant)
        if self.registry is not None:
            describe = getattr(plant, "description_ad", None)
            self.registry.publish(
                plant.name,
                "vmplant",
                plant,
                description=describe() if describe else None,
            )

    def discover_plants(
        self,
        kind: str = "vmplant",
        requirements: Optional[Any] = None,
    ) -> int:
        """Adopt every matching service from the registry.

        ``requirements`` (classad text or a pre-compiled
        :class:`~repro.core.classad.Expression`) narrows adoption to
        descriptions matching the expression, served through the
        registry's attribute index.
        """
        if self.registry is None:
            raise ShopError("no registry configured")
        added = 0
        known = {id(b) for b in self.bidders}
        for entry in self.registry.discover(kind, requirements):
            if id(entry.binding) not in known:
                self.bidders.append(entry.binding)
                added += 1
        return added

    # -- services --------------------------------------------------------------
    def next_vmid(self) -> str:
        """Allocate the next shop-unique VM identifier."""
        self._seq += 1
        return f"{self.name}-vm-{self._seq:05d}"

    def create(
        self,
        request: CreateRequest,
        clone_mode: Optional[CloneMode] = None,
    ) -> Generator:
        """Create a VM somewhere; returns its classad.

        Raises :class:`ShopError` when no plant bids; plant-side
        failures surface unless ``retry_other_plants`` is set, in
        which case the next-best bidder is tried.  With a
        :class:`~repro.faults.recovery.RecoveryPolicy` configured, a
        failed attempt is re-bid (fresh VMID, exponential backoff) up
        to ``max_attempts`` times, bid collection and each plant-side
        create are bounded by deadlines, and repeat offenders are
        quarantined behind per-plant circuit breakers.
        """
        if self.use_xml:
            # Exercise the prototype's XML service path end to end.
            wire = service_request_to_xml(request, service="create")
            service, request = service_request_from_xml(wire)
            if service != "create":  # pragma: no cover - defensive
                raise ShopError(f"unexpected service {service!r}")

        policy = self.recovery
        last_error: Optional[ReproError] = None
        for attempt in range(1, max(1, policy.max_attempts) + 1):
            if attempt > 1:
                delay = policy.backoff_delay(attempt)
                trace(
                    self.env, "shop", "create-backoff",
                    attempt=attempt, delay=delay,
                )
                if delay > 0:
                    yield self.env.timeout(delay)
            try:
                ad = yield from self._create_attempt(request, clone_mode)
            except ReproError as exc:
                last_error = exc
                continue
            return ad
        assert last_error is not None
        raise last_error

    def _health_for(self, name: str) -> PlantHealth:
        breaker = self.health.get(name)
        if breaker is None:
            breaker = PlantHealth(
                name,
                threshold=self.recovery.quarantine_threshold,
                quarantine_s=self.recovery.quarantine_s,
            )
            self.health[name] = breaker
        return breaker

    def _create_attempt(
        self,
        request: CreateRequest,
        clone_mode: Optional[CloneMode],
    ) -> Generator:
        """One bid-and-dispatch round (fresh VMID per round)."""
        policy = self.recovery
        bidders = self.bidders
        if policy.quarantine_threshold > 0:
            now = self.env.now
            admitted = [
                b for b in bidders if self._health_for(b.name).allows(now)
            ]
            # An all-quarantined site still gets a desperation round
            # over everyone rather than an instant no-bid failure.
            if admitted:
                bidders = admitted
        bids = yield from self.collector.collect(
            bidders, request, deadline_s=policy.bid_deadline_s
        )
        ranked = self.collector.rank(bids)
        if not ranked:
            raise ShopError("no plant bid for the request")

        vmid = self.next_vmid()
        trace(
            self.env, "shop", "bids-collected",
            vmid=vmid, bids=len(ranked), best=ranked[0].bidder_name,
        )
        last_error: Optional[ReproError] = None
        candidates = ranked if self.retry_other_plants else ranked[:1]
        for bid in candidates:
            try:
                ad = yield from self._dispatch_create(
                    bid, request, vmid, clone_mode
                )
            except ReproError as exc:
                self.creation_log.append((vmid, bid.bidder_name, False))
                last_error = exc
                trace(
                    self.env, "shop", "create-failed",
                    vmid=vmid, plant=bid.bidder_name,
                    error=type(exc).__name__,
                )
                if self._health_for(bid.bidder_name).record_failure(
                    self.env.now
                ):
                    trace(
                        self.env, "shop", "plant-quarantined",
                        plant=bid.bidder_name,
                        until=self.env.now + self.recovery.quarantine_s,
                    )
                # Synchronous orphan release: whatever partial state
                # the failed/aborted create left behind must be gone
                # before the next bidder (or attempt) runs.
                abort = getattr(bid.bidder, "abort_creation", None)
                if abort is not None:
                    abort(vmid)
                continue
            self._health_for(bid.bidder_name).record_success(self.env.now)
            self._route[vmid] = bid.bidder
            if self.cache_classads:
                self._cache[vmid] = ad.copy()
            self.creation_log.append((vmid, bid.bidder_name, True))
            trace(
                self.env, "shop", "created",
                vmid=vmid, plant=bid.bidder_name,
            )
            return ad
        assert last_error is not None
        raise last_error

    def _dispatch_create(
        self,
        bid: Bid,
        request: CreateRequest,
        vmid: str,
        clone_mode: Optional[CloneMode],
    ) -> Generator:
        """Run one plant-side create, bounded by ``create_deadline_s``.

        Without a deadline this is exactly the seed's direct transport
        call.  With one, the call runs as a child process raced
        against a timer; on expiry the child is interrupted (its
        unwinding releases plant-side state synchronously) and
        :class:`DeadlineExceeded` is raised.
        """
        deadline = self.recovery.create_deadline_s
        handler = lambda b=bid: b.bidder.create(  # noqa: E731
            request, vmid, clone_mode
        )
        if deadline is None:
            ad = yield from self.transport.call(handler)
            return ad
        proc = self.env.process(self.transport.call(handler))
        yield self.env.any_of([proc, self.env.timeout(deadline)])
        if proc.triggered:
            if not proc.ok:
                proc.defused = True
                raise proc.value
            return proc.value
        trace(
            self.env, "shop", "create-deadline",
            vmid=vmid, plant=bid.bidder_name, deadline=deadline,
        )
        proc.interrupt("create deadline")
        # Let the interrupt unwind the plant-side generator chain (it
        # releases memory / leases in its except blocks) before the
        # caller inspects or reuses that state.
        yield self.env.timeout(0.0)
        raise DeadlineExceeded(
            f"create of {vmid} on {bid.bidder_name} exceeded "
            f"{deadline:g}s deadline"
        )

    def estimate(self, request: CreateRequest) -> Generator:
        """Collect and return all bids without creating anything."""
        bids = yield from self.collector.collect(self.bidders, request)
        return bids

    def query(
        self,
        vmid: str,
        attributes: Iterable[str] = (),
        use_cache: bool = False,
    ) -> Generator:
        """Fetch a VM's classad (optionally served from the cache)."""
        # Bind once: a generator argument would be exhausted by the
        # first tuple() call and silently corrupt cache behaviour.
        attrs = tuple(attributes)
        if use_cache and not attrs and vmid in self._cache:
            return self._cache[vmid].copy()
        plant = self._plant_for(vmid)
        ad = yield from self.transport.call(
            lambda: plant.query(vmid, attrs)
        )
        if self.cache_classads and not attrs:
            self._cache[vmid] = ad.copy()
        return ad

    def destroy(
        self,
        vmid: str,
        commit: bool = False,
        publish_as: Optional[str] = None,
    ) -> Generator:
        """Collect a VM; returns its final classad.

        A destroy that fails because the plant no longer knows the VM
        (crash-killed underneath the shop) still drops the stale route
        before re-raising, so the id cannot be "destroyed" twice.
        """
        plant = self._plant_for(vmid)
        try:
            ad = yield from self.transport.call(
                lambda: plant.destroy(vmid, commit, publish_as)
            )
        except ReproError:
            self._route.pop(vmid, None)
            self._cache.pop(vmid, None)
            raise
        del self._route[vmid]
        self._cache.pop(vmid, None)
        return ad

    # -- resilience ---------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild VMID routing after a shop restart.

        The shop holds no authoritative VM state (Section 3.1): each
        plant's information system does.  Re-interrogating the plants
        restores routing for every active VM; the classad cache
        repopulates lazily.
        """
        self._route.clear()
        self._cache.clear()
        recovered = 0
        for bidder in self.bidders:
            infosys = getattr(bidder, "infosys", None)
            if infosys is None:
                continue
            for vm in infosys.active():
                self._route[vm.vmid] = bidder
                recovered += 1
        return recovered

    def active_vmids(self) -> List[str]:
        """VMIDs currently routed by this shop."""
        return list(self._route)

    def reroute(self, vmid: str, plant: Any) -> None:
        """Point a VMID at a new plant (used after migration)."""
        if vmid not in self._route:
            raise ShopError(f"unknown VMID {vmid!r}")
        self._route[vmid] = plant
        self._cache.pop(vmid, None)

    def _plant_for(self, vmid: str) -> Any:
        try:
            return self._route[vmid]
        except KeyError:
            raise ShopError(f"unknown VMID {vmid!r}") from None

    def __repr__(self) -> str:
        return (
            f"<VMShop {self.name} plants={len(self.bidders)}"
            f" active={len(self._route)}>"
        )
