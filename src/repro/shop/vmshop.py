"""The VMShop front-end service.

From the client's perspective the shop plays the system administrator
(Section 3.1): **create** finds and configures a machine, **query**
reports on it, **destroy** collects it.  The shop:

* round-trips create requests through their XML encoding (the
  prototype's service specification format);
* collects cost bids from its registered plants/brokers and picks the
  winner (cheapest, random among ties);
* assigns the site-unique VMID and remembers only the VMID → plant
  routing plus an optional classad *cache* — the authoritative classad
  lives in the plant's information system, which is what makes shop
  restarts cheap (:meth:`VMShop.recover` rebuilds the routing from the
  plants).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.core.classad import ClassAd
from repro.core.errors import ReproError, ShopError
from repro.core.spec import CreateRequest
from repro.plant.production import CloneMode
from repro.shop.bidding import Bid, BidCollector
from repro.shop.protocol import (
    Transport,
    service_request_from_xml,
    service_request_to_xml,
)
from repro.shop.registry import ServiceRegistry
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub
from repro.sim.trace import trace

__all__ = ["VMShop"]


class VMShop:
    """Single logical point of contact for VM services."""

    def __init__(
        self,
        env: Environment,
        name: str = "vmshop",
        transport: Optional[Transport] = None,
        rng: Optional[RngHub] = None,
        registry: Optional[ServiceRegistry] = None,
        use_xml: bool = True,
        retry_other_plants: bool = False,
        cache_classads: bool = True,
    ):
        self.env = env
        self.name = name
        self.rng = rng or RngHub(0)
        self.transport = transport or Transport(env, self.rng)
        self.registry = registry
        self.use_xml = use_xml
        #: On plant failure, fall through to the next-best bid?
        self.retry_other_plants = retry_other_plants
        self.cache_classads = cache_classads
        self.collector = BidCollector(env, self.transport, self.rng)
        self.bidders: List[Any] = []
        self._route: Dict[str, Any] = {}
        self._cache: Dict[str, ClassAd] = {}
        self._seq = 0
        #: Creation log: (vmid, plant_name, ok) for experiments.
        self.creation_log: List[tuple] = []
        if registry is not None:
            registry.publish(name, "vmshop", self)

    # -- membership ---------------------------------------------------------
    def register_plant(self, plant: Any) -> None:
        """Add a plant or broker to the bidding set."""
        self.bidders.append(plant)
        if self.registry is not None:
            describe = getattr(plant, "description_ad", None)
            self.registry.publish(
                plant.name,
                "vmplant",
                plant,
                description=describe() if describe else None,
            )

    def discover_plants(
        self,
        kind: str = "vmplant",
        requirements: Optional[Any] = None,
    ) -> int:
        """Adopt every matching service from the registry.

        ``requirements`` (classad text or a pre-compiled
        :class:`~repro.core.classad.Expression`) narrows adoption to
        descriptions matching the expression, served through the
        registry's attribute index.
        """
        if self.registry is None:
            raise ShopError("no registry configured")
        added = 0
        known = {id(b) for b in self.bidders}
        for entry in self.registry.discover(kind, requirements):
            if id(entry.binding) not in known:
                self.bidders.append(entry.binding)
                added += 1
        return added

    # -- services --------------------------------------------------------------
    def next_vmid(self) -> str:
        """Allocate the next shop-unique VM identifier."""
        self._seq += 1
        return f"{self.name}-vm-{self._seq:05d}"

    def create(
        self,
        request: CreateRequest,
        clone_mode: Optional[CloneMode] = None,
    ) -> Generator:
        """Create a VM somewhere; returns its classad.

        Raises :class:`ShopError` when no plant bids; plant-side
        failures surface unless ``retry_other_plants`` is set, in
        which case the next-best bidder is tried.
        """
        if self.use_xml:
            # Exercise the prototype's XML service path end to end.
            wire = service_request_to_xml(request, service="create")
            service, request = service_request_from_xml(wire)
            if service != "create":  # pragma: no cover - defensive
                raise ShopError(f"unexpected service {service!r}")

        bids = yield from self.collector.collect(self.bidders, request)
        ranked = self.collector.rank(bids)
        if not ranked:
            raise ShopError("no plant bid for the request")

        vmid = self.next_vmid()
        trace(
            self.env, "shop", "bids-collected",
            vmid=vmid, bids=len(ranked), best=ranked[0].bidder_name,
        )
        last_error: Optional[ReproError] = None
        candidates = ranked if self.retry_other_plants else ranked[:1]
        for bid in candidates:
            try:
                ad = yield from self.transport.call(
                    lambda b=bid: b.bidder.create(request, vmid, clone_mode)
                )
            except ReproError as exc:
                self.creation_log.append((vmid, bid.bidder_name, False))
                last_error = exc
                continue
            self._route[vmid] = bid.bidder
            if self.cache_classads:
                self._cache[vmid] = ad.copy()
            self.creation_log.append((vmid, bid.bidder_name, True))
            trace(
                self.env, "shop", "created",
                vmid=vmid, plant=bid.bidder_name,
            )
            return ad
        assert last_error is not None
        raise last_error

    def estimate(self, request: CreateRequest) -> Generator:
        """Collect and return all bids without creating anything."""
        bids = yield from self.collector.collect(self.bidders, request)
        return bids

    def query(
        self,
        vmid: str,
        attributes: Iterable[str] = (),
        use_cache: bool = False,
    ) -> Generator:
        """Fetch a VM's classad (optionally served from the cache)."""
        # Bind once: a generator argument would be exhausted by the
        # first tuple() call and silently corrupt cache behaviour.
        attrs = tuple(attributes)
        if use_cache and not attrs and vmid in self._cache:
            return self._cache[vmid].copy()
        plant = self._plant_for(vmid)
        ad = yield from self.transport.call(
            lambda: plant.query(vmid, attrs)
        )
        if self.cache_classads and not attrs:
            self._cache[vmid] = ad.copy()
        return ad

    def destroy(
        self,
        vmid: str,
        commit: bool = False,
        publish_as: Optional[str] = None,
    ) -> Generator:
        """Collect a VM; returns its final classad."""
        plant = self._plant_for(vmid)
        ad = yield from self.transport.call(
            lambda: plant.destroy(vmid, commit, publish_as)
        )
        del self._route[vmid]
        self._cache.pop(vmid, None)
        return ad

    # -- resilience ---------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild VMID routing after a shop restart.

        The shop holds no authoritative VM state (Section 3.1): each
        plant's information system does.  Re-interrogating the plants
        restores routing for every active VM; the classad cache
        repopulates lazily.
        """
        self._route.clear()
        self._cache.clear()
        recovered = 0
        for bidder in self.bidders:
            infosys = getattr(bidder, "infosys", None)
            if infosys is None:
                continue
            for vm in infosys.active():
                self._route[vm.vmid] = bidder
                recovered += 1
        return recovered

    def active_vmids(self) -> List[str]:
        """VMIDs currently routed by this shop."""
        return list(self._route)

    def reroute(self, vmid: str, plant: Any) -> None:
        """Point a VMID at a new plant (used after migration)."""
        if vmid not in self._route:
            raise ShopError(f"unknown VMID {vmid!r}")
        self._route[vmid] = plant
        self._cache.pop(vmid, None)

    def _plant_for(self, vmid: str) -> Any:
        try:
            return self._route[vmid]
        except KeyError:
            raise ShopError(f"unknown VMID {vmid!r}") from None

    def __repr__(self) -> str:
        return (
            f"<VMShop {self.name} plants={len(self.bidders)}"
            f" active={len(self._route)}>"
        )
