"""Service message encodings and the latency-charging transport.

The prototype exchanges XML service specifications over sockets
(Section 4.1).  This module provides:

* :func:`service_request_to_xml` / :func:`service_request_from_xml` —
  one envelope for all four services (create carries the full request
  body of :mod:`repro.core.dagxml`; query/destroy/estimate are small);
* :class:`Transport` — the messaging substrate: every call charges a
  (jittered) round-trip latency in the simulation clock, composing
  naturally with synchronous handlers and process-generator handlers.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Generator, Optional, Tuple, Union

from repro.core.dagxml import request_from_xml, request_to_xml
from repro.core.errors import ProtocolError
from repro.core.spec import CreateRequest, DestroyRequest, QueryRequest
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub

__all__ = [
    "Transport",
    "service_request_to_xml",
    "service_request_from_xml",
]

ServiceRequest = Union[CreateRequest, QueryRequest, DestroyRequest]


def service_request_to_xml(
    request: ServiceRequest, service: Optional[str] = None
) -> str:
    """Encode any service request as an XML string.

    ``service`` overrides the envelope's service name — used to wrap a
    :class:`CreateRequest` body in an *estimate* request for bidding.

    Encodings are memoized on the (frozen) request object per service
    name: bidding encodes one request once, not once per plant.
    """
    memo = getattr(request, "_xml_memo", None)
    if memo is not None:
        cached = memo.get(service)
        if cached is not None:
            return cached
    text = _encode_request(request, service)
    if memo is None:
        memo = {}
        object.__setattr__(request, "_xml_memo", memo)
    memo[service] = text
    return text


def _encode_request(
    request: ServiceRequest, service: Optional[str] = None
) -> str:
    if isinstance(request, CreateRequest):
        text = request_to_xml(request)
        if service is None or service == "create":
            return text
        root = ET.fromstring(text)
        root.set("service", service)
        return ET.tostring(root, encoding="unicode")
    if isinstance(request, QueryRequest):
        root = ET.Element(
            "vmplant-request", {"service": "query", "vmid": request.vmid}
        )
        for attr in request.attributes:
            ET.SubElement(root, "attribute", {"name": attr})
        return ET.tostring(root, encoding="unicode")
    if isinstance(request, DestroyRequest):
        attrs = {
            "service": "destroy",
            "vmid": request.vmid,
            "commit": "true" if request.commit else "false",
        }
        if request.publish_as is not None:
            attrs["publish-as"] = request.publish_as
        root = ET.Element("vmplant-request", attrs)
        return ET.tostring(root, encoding="unicode")
    raise ProtocolError(
        f"unsupported request type {type(request).__name__}"
    )


def service_request_from_xml(text: str) -> Tuple[str, ServiceRequest]:
    """Decode an envelope; returns ``(service, request)``."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed XML: {exc}") from exc
    if root.tag != "vmplant-request":
        raise ProtocolError(f"expected <vmplant-request>, got <{root.tag}>")
    service = root.get("service")
    if service in ("create", "estimate"):
        # Re-parse through the strict create parser.
        body = ET.tostring(root, encoding="unicode")
        if service == "estimate":
            root.set("service", "create")
            body = ET.tostring(root, encoding="unicode")
        return service, request_from_xml(body)
    if service == "query":
        vmid = root.get("vmid")
        if vmid is None:
            raise ProtocolError("query request missing vmid")
        attributes = tuple(
            el.get("name", "") for el in root if el.tag == "attribute"
        )
        return service, QueryRequest(vmid=vmid, attributes=attributes)
    if service == "destroy":
        vmid = root.get("vmid")
        if vmid is None:
            raise ProtocolError("destroy request missing vmid")
        return service, DestroyRequest(
            vmid=vmid,
            commit=root.get("commit") == "true",
            publish_as=root.get("publish-as"),
        )
    raise ProtocolError(f"unknown service {service!r}")


class Transport:
    """Message substrate charging round-trip latency per call."""

    def __init__(
        self,
        env: Environment,
        rng: Optional[RngHub] = None,
        latency_s: float = 0.05,
        jitter_sigma: float = 0.2,
    ):
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.rng = rng or RngHub(0)
        self.latency_s = latency_s
        self.jitter_sigma = jitter_sigma
        self.calls = 0

    def _one_way(self) -> float:
        if self.latency_s == 0:
            return 0.0
        return self.latency_s * self.rng.lognormal(
            "transport", 0.0, self.jitter_sigma
        )

    def call(self, handler: Callable[[], Any]) -> Generator:
        """Invoke ``handler`` remotely: latency → handler → latency.

        ``handler()`` may return a plain value or a process generator
        (which is then driven to completion); the transport returns
        its result.
        """
        self.calls += 1
        yield self.env.timeout(self._one_way())
        result = handler()
        if hasattr(result, "send") and hasattr(result, "throw"):
            result = yield from result
        yield self.env.timeout(self._one_way())
        return result
