"""Cost models for VMPlant bidding (Sections 3.4 and 4.1)."""

from repro.cost.models import (
    CompositeCost,
    CostModel,
    MemoryAvailableCost,
    NetworkComputeCost,
)

__all__ = [
    "CompositeCost",
    "CostModel",
    "MemoryAvailableCost",
    "NetworkComputeCost",
]
