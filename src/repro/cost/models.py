"""Cost models behind the VMShop bidding protocol.

The bidding protocol represents creation costs "generically as
numbers" (Section 3.1); a plant declines a request by returning no bid
(``None`` here).  Two concrete models from the paper:

* :class:`NetworkComputeCost` — Section 3.4: a one-time *network cost*
  charged only when the request's client domain needs a fresh
  host-only network, plus a *compute-cycles cost* proportional to the
  number of VMs already operating on the plant.  With the paper's
  parameters (network 50, compute 4/VM) the shop keeps choosing the
  same plant for one domain until its 13th VM, when the accumulated
  compute cost finally exceeds a competitor's network cost.
* :class:`MemoryAvailableCost` — Section 4.1's prototype model, based
  on the amount of host memory still available for cloned VMs; the
  emptier plant bids lower, producing load balancing.

Models are stateless: they read plant state through the small
:class:`PlantView` protocol, so the same model instance can serve many
plants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.spec import CreateRequest

__all__ = [
    "PlantView",
    "CostModel",
    "NetworkComputeCost",
    "MemoryAvailableCost",
    "CompositeCost",
]


class PlantView:
    """What a cost model may observe about a plant.

    Structural protocol implemented by
    :class:`~repro.plant.vmplant.VMPlant`.
    """

    def active_vm_count(self) -> int:
        """VMs currently operating on the plant."""
        raise NotImplementedError

    def committed_memory_mb(self) -> int:
        """Aggregate guest memory of active VMs."""
        raise NotImplementedError

    def host_memory_mb(self) -> int:
        """Physical memory available to the VMM on this host."""
        raise NotImplementedError

    def vm_capacity(self) -> Optional[int]:
        """Maximum concurrent VMs (None = unbounded)."""
        raise NotImplementedError

    def network_would_be_fresh(self, domain: str) -> bool:
        """Would this domain require a new host-only network?"""
        raise NotImplementedError

    def network_has_capacity(self, domain: str) -> bool:
        """Can this domain's VM be attached to a host-only network?"""
        raise NotImplementedError


class CostModel(ABC):
    """Maps (plant state, request) to a bid."""

    @abstractmethod
    def estimate(
        self, plant: PlantView, request: CreateRequest
    ) -> Optional[float]:
        """The plant's bid for the request; None = cannot host."""

    @staticmethod
    def _admissible(plant: PlantView, request: CreateRequest) -> bool:
        """Common admission checks shared by the concrete models."""
        cap = plant.vm_capacity()
        if cap is not None and plant.active_vm_count() >= cap:
            return False
        if not plant.network_has_capacity(request.network.domain):
            return False
        return True


class NetworkComputeCost(CostModel):
    """Section 3.4: one-time network cost + per-VM compute cost."""

    def __init__(
        self, network_cost: float = 50.0, compute_cost_per_vm: float = 4.0
    ):
        if network_cost < 0 or compute_cost_per_vm < 0:
            raise ValueError("costs must be non-negative")
        self.network_cost = network_cost
        self.compute_cost_per_vm = compute_cost_per_vm

    def estimate(
        self, plant: PlantView, request: CreateRequest
    ) -> Optional[float]:
        if not self._admissible(plant, request):
            return None
        cost = self.compute_cost_per_vm * plant.active_vm_count()
        if plant.network_would_be_fresh(request.network.domain):
            cost += self.network_cost
        return cost


class MemoryAvailableCost(CostModel):
    """Section 4.1 prototype: bid by host-memory headroom.

    The bid is the fraction of host memory that would be committed
    after hosting the request, scaled to ``scale``.  Hosted VMs may
    *overcommit* host memory — the paper's 64 MB experiment runs 16
    clones (>1 GB of guest memory) per 1.5 GB host, paying for it with
    longer cloning times — so a plant only declines beyond the
    ``overcommit`` factor.
    """

    def __init__(
        self,
        scale: float = 100.0,
        reserve_mb: int = 256,
        overcommit: float = 2.0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if reserve_mb < 0:
            raise ValueError("reserve_mb must be non-negative")
        if overcommit < 1.0:
            raise ValueError("overcommit must be >= 1.0")
        self.scale = scale
        #: Memory reserved for the host OS and the VMM itself.
        self.reserve_mb = reserve_mb
        self.overcommit = overcommit

    def estimate(
        self, plant: PlantView, request: CreateRequest
    ) -> Optional[float]:
        if not self._admissible(plant, request):
            return None
        usable = plant.host_memory_mb() - self.reserve_mb
        if usable <= 0:
            return None
        after = plant.committed_memory_mb() + request.hardware.memory_mb
        if after > self.overcommit * usable:
            return None
        return self.scale * after / usable


class CompositeCost(CostModel):
    """Weighted sum of component models (None from any ⇒ no bid)."""

    def __init__(
        self,
        models: Sequence[CostModel],
        weights: Optional[Sequence[float]] = None,
    ):
        if not models:
            raise ValueError("at least one component model is required")
        self.models = list(models)
        self.weights = (
            list(weights) if weights is not None else [1.0] * len(models)
        )
        if len(self.weights) != len(self.models):
            raise ValueError("weights must match models")

    def estimate(
        self, plant: PlantView, request: CreateRequest
    ) -> Optional[float]:
        total = 0.0
        for model, weight in zip(self.models, self.weights):
            bid = model.estimate(plant, request)
            if bid is None:
                return None
            total += weight * bid
        return total
