"""VMPlants (SC 2004) reproduction.

A from-scratch Python implementation of the VMPlant Grid service:
graph-based VM configuration, partial matching of cached golden
images, clone-based instantiation, the VMShop/VMPlant/VMBroker
service architecture with cost bidding, and VNET-style virtual
networking — plus the simulated testbed and local (real-filesystem)
substrates used to reproduce the paper's evaluation.

Quickstart::

    from repro import build_testbed, experiment_request

    bed = build_testbed(seed=1)
    ad = bed.run(bed.shop.create(experiment_request(memory_mb=32)))
    print(ad["vmid"], ad["total_time"])
"""

from repro.core import (
    Action,
    ActionResult,
    ActionScope,
    ActionStatus,
    ClassAd,
    ConfigDAG,
    CreateRequest,
    DestroyRequest,
    ErrorPolicy,
    HardwareSpec,
    NetworkSpec,
    QueryRequest,
    SoftwareSpec,
)
from repro.cost import (
    CompositeCost,
    CostModel,
    MemoryAvailableCost,
    NetworkComputeCost,
)
from repro.plant import (
    CloneMode,
    GoldenImage,
    ProductionLine,
    VMPlant,
    VMWarehouse,
    VirtualMachine,
)
from repro.provisioning import FULL_PROVISIONING, ProvisioningConfig
from repro.shop import ServiceRegistry, Transport, VMBroker, VMShop
from repro.sim.cluster import Testbed, build_testbed, run_process
from repro.workloads import (
    experiment_dag,
    experiment_request,
    golden_image,
    invigo_workspace_dag,
    request_stream,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "ActionResult",
    "ActionScope",
    "ActionStatus",
    "ClassAd",
    "CloneMode",
    "CompositeCost",
    "ConfigDAG",
    "CostModel",
    "CreateRequest",
    "DestroyRequest",
    "ErrorPolicy",
    "GoldenImage",
    "HardwareSpec",
    "MemoryAvailableCost",
    "NetworkComputeCost",
    "NetworkSpec",
    "ProductionLine",
    "FULL_PROVISIONING",
    "ProvisioningConfig",
    "QueryRequest",
    "ServiceRegistry",
    "SoftwareSpec",
    "Testbed",
    "Transport",
    "VMBroker",
    "VMPlant",
    "VMShop",
    "VMWarehouse",
    "VirtualMachine",
    "build_testbed",
    "experiment_dag",
    "experiment_request",
    "golden_image",
    "invigo_workspace_dag",
    "request_stream",
    "run_process",
    "__version__",
]
