"""The VMPlant daemon: services of Figure 2 wired together.

A plant runs on one physical resource and exposes four services to
the shop: **create**, **query**, **destroy** (collect), and
**estimate** (the cost-bidding hook).  Internally it owns a PPP, the
(site-shared) warehouse handle, its production lines, a VM information
system with run-time monitor, and the host-only network pool used for
VNET-style isolation.

``create`` and ``destroy`` are simulation-kernel process generators;
``query`` and ``estimate`` are immediate (the transport layer charges
their latency).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Mapping, Optional

from repro.core.classad import UNDEFINED, ClassAd, Expression, equality_key
from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError, VNetError
from repro.core.matching import match_performed
from repro.core.spec import CreateRequest
from repro.cost.models import CostModel, MemoryAvailableCost, PlantView
from repro.plant.infosys import VMInformationSystem
from repro.plant.monitor import VMMonitor
from repro.plant.ppp import ProductionOrder, ProductionProcessPlanner
from repro.plant.production import (
    CloneMode,
    ProductionLine,
    VirtualMachine,
    VMStatus,
)
from repro.plant.warehouse import VMWarehouse
from repro.sim.kernel import Environment
from repro.sim.trace import trace
from repro.vnet.hostonly import HostOnlyNetworkPool
from repro.vnet.vnetd import VirtualNetworkService, VNetProxy, VNetServer

__all__ = ["VMPlant"]


class VMPlant(PlantView):
    """One plant daemon."""

    def __init__(
        self,
        env: Environment,
        name: str,
        warehouse: VMWarehouse,
        lines: Mapping[str, ProductionLine],
        cost_model: Optional[CostModel] = None,
        host_memory_mb: int = 1536,
        max_vms: Optional[int] = None,
        network_pool: Optional[HostOnlyNetworkPool] = None,
        vnet_service: Optional[VirtualNetworkService] = None,
        default_clone_mode: CloneMode = CloneMode.LINK,
        monitor_period: float = 30.0,
    ):
        self.env = env
        self.name = name
        self.warehouse = warehouse
        self.lines: Dict[str, ProductionLine] = dict(lines)
        self.cost_model = cost_model or MemoryAvailableCost()
        self._host_memory_mb = host_memory_mb
        self.max_vms = max_vms
        self.network_pool = network_pool or HostOnlyNetworkPool(name)
        self.vnet_service = vnet_service
        self.default_clone_mode = default_clone_mode
        self.infosys = VMInformationSystem()
        #: Optional AdaptiveSpeculativePool serving creates from
        #: pre-warmed clones (duck-typed to avoid a circular import).
        self.speculative = None
        #: Cordoned plants decline all new bids (maintenance mode);
        #: existing VMs keep running and can be drained away.
        self.cordoned = False
        #: Crash state (fault injection): a down plant's host is
        #: gone — resident VMs died, and remote calls hang until
        #: recovery (see :meth:`fail` / :meth:`recover`).
        self.down = False
        self._up_event = None
        self.ppp = ProductionProcessPlanner(
            env, warehouse, self.infosys, self.lines
        )
        self.monitor = VMMonitor(env, self.infosys, monitor_period)
        #: (vmid → domain) for bridge teardown at collection time.
        self._vm_domain: Dict[str, str] = {}
        self._vm_bridged: Dict[str, bool] = {}
        #: description_ad memo: (infosys.version, pool.version) → ad.
        self._description_memo: Optional[tuple] = None
        if vnet_service is not None:
            vnet_service.register_server(
                VNetServer(plant_name=name, host=name)
            )

    # -- PlantView (cost model inputs) -------------------------------------
    def active_vm_count(self) -> int:
        return len(self.infosys)

    def committed_memory_mb(self) -> int:
        return self.infosys.total_guest_memory_mb()

    def host_memory_mb(self) -> int:
        return self._host_memory_mb

    def vm_capacity(self) -> Optional[int]:
        return self.max_vms

    def network_would_be_fresh(self, domain: str) -> bool:
        return self.network_pool.would_be_fresh(domain)

    def network_has_capacity(self, domain: str) -> bool:
        return self.network_pool.has_capacity_for(domain)

    # -- services ------------------------------------------------------------
    def description_ad(self) -> ClassAd:
        """This plant's matchmaking description (registry/bidding).

        Memoized against the infosys/network-pool mutation counters:
        every derived attribute (``committed_mb``, ``active_vms``,
        ``networks_free``) changes only when one of them ticks, so the
        same ad answers every bid between mutations.  Callers must
        treat the returned ad as read-only (``copy()`` to mutate).
        """
        key = (self.infosys.version, self.network_pool.version)
        memo = self._description_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        ad = ClassAd(
            {
                "name": self.name,
                "kind": "vmplant",
                "vm_types": sorted(self.lines),
                "host_memory_mb": self._host_memory_mb,
                "committed_mb": self.committed_memory_mb(),
                "active_vms": self.active_vm_count(),
                "networks_free": self.network_pool.free_count,
                "max_vms": (
                    self.max_vms if self.max_vms is not None else -1
                ),
            }
        )
        self._description_memo = (key, ad)
        return ad

    def estimate(self, request: CreateRequest) -> Optional[float]:
        """Bid for a creation request (None = declined).

        A plant declines when it lacks the requested technology, no
        production line can host the request, no warehouse image
        matches it, the request's matchmaking ``requirements``
        expression rejects this plant's description ad, or the cost
        model refuses.
        """
        if self.cordoned or self.down:
            return None
        if request.vm_type is not None and request.vm_type not in self.lines:
            return None
        if request.requirements is not None:
            description = self.description_ad()
            # Fast reject: any ``other.attr == literal`` conjunct of
            # the requirements that provably fails against a concrete
            # description value means the conjunction cannot be True —
            # decline without running the full match.
            attrs = description._attrs
            for attr, scope_kind, key in Expression(
                request.requirements
            ).equality_constraints():
                if scope_kind != "other":
                    continue
                raw = attrs.get(attr, UNDEFINED)
                if not isinstance(raw, Expression) and (
                    equality_key(raw) != key
                ):
                    return None
            if not request.to_classad().matches(description):
                return None
        line_ok = any(
            line.can_host(request)
            for vm_type, line in self.lines.items()
            if request.vm_type in (None, vm_type)
        )
        if not line_ok:
            return None
        try:
            self.ppp.plan(
                ProductionOrder(vmid="__estimate__", request=request)
            )
        except PlantError:
            return None
        cost = self.cost_model.estimate(self, request)
        if (
            cost is not None
            and self.speculative is not None
            and self.speculative.available(request)
        ):
            # A pooled clone serves this request by extension alone —
            # quote the cheaper path so the shop prefers warm plants.
            cost *= self.speculative.bid_discount
        return cost

    def estimate_proc(self, request: CreateRequest) -> Generator:
        """Transport-driven estimate: hangs while the plant is down.

        A crashed plant's remote estimate call simply never returns
        until the host is back (the shop's ``bid_deadline_s`` is what
        bounds the wait).  Zero-yield when healthy, so the default
        trajectory is identical to the immediate :meth:`estimate`.
        """
        while self.down:
            yield self._up_event
        return self.estimate(request)

    def create(
        self,
        request: CreateRequest,
        vmid: str,
        clone_mode: Optional[CloneMode] = None,
    ) -> Generator:
        """Produce a VM; returns a copy of its classad.

        The paper's creation pipeline: admission → host-only network
        attach → (optional) VNET bridge setup → PPP clone+configure.
        Failures unwind the network state before re-raising.  With a
        speculative pool attached, a compatible pre-warmed clone is
        adopted and extended instead — it already holds network and
        memory resources, so the capacity check is skipped.
        """
        if self.down:
            raise PlantError(f"plant {self.name}: host is down")
        if self.speculative is not None:
            ad = yield from self.speculative.acquire(request, vmid)
            if ad is not None:
                trace(
                    self.env,
                    "plant",
                    "pool-hit",
                    plant=self.name,
                    vmid=vmid,
                )
                return ad
        if self.max_vms is not None and len(self.infosys) >= self.max_vms:
            raise PlantError(f"plant {self.name}: at VM capacity")
        domain = request.network.domain
        assignment = self.network_pool.attach(domain, vmid)

        bridged = False
        if self.vnet_service is not None and request.network.wants_vnet:
            proxy = VNetProxy(
                domain=domain,
                host=request.network.proxy_host or "",
                port=request.network.proxy_port or 0,
                credentials=request.network.credentials,
            )
            self.vnet_service.setup_bridge(
                self.name, assignment.network_id, proxy
            )
            bridged = True

        context = {
            "ip": assignment.ip_address,
            "network_id": assignment.network_id,
            "plant": self.name,
        }
        order = ProductionOrder(
            vmid=vmid,
            request=request,
            clone_mode=clone_mode or self.default_clone_mode,
            context=context,
        )
        try:
            vm: VirtualMachine = yield from self.ppp.produce(order)
        except Exception:
            self.network_pool.detach(vmid)
            if bridged:
                self.vnet_service.teardown_bridge(self.name, domain)
            raise

        vm.network_id = assignment.network_id
        self._vm_domain[vmid] = domain
        self._vm_bridged[vmid] = bridged
        ad = vm.classad
        ad["plant"] = self.name
        ad["network_id"] = assignment.network_id
        ad["ip"] = assignment.ip_address
        ad["network_fresh"] = assignment.fresh_allocation
        return ad.copy()

    def attach_speculative(self, manager) -> None:
        """Attach an adaptive speculative-pool manager to this plant."""
        self.speculative = manager

    def rename_vm(self, old: str, new: str) -> VirtualMachine:
        """Re-register a live VM under a new vmid (pool adoption)."""
        vm = self.infosys.rename(old, new)
        vm.classad["vmid"] = new
        self.network_pool.rename(old, new)
        if old in self._vm_domain:
            self._vm_domain[new] = self._vm_domain.pop(old)
        if old in self._vm_bridged:
            self._vm_bridged[new] = self._vm_bridged.pop(old)
        return vm

    def query(self, vmid: str, attributes: Iterable[str] = ()) -> ClassAd:
        """Classad (or projection) of an active VM."""
        return self.infosys.query(vmid, attributes)

    def extend(
        self,
        vmid: str,
        dag: ConfigDAG,
        context: Optional[Dict[str, str]] = None,
    ) -> Generator:
        """Apply additional configuration to a *running* VM.

        ``dag`` describes the desired total configuration; the actions
        already performed on the VM must form a valid prefix of it
        (the same Section 3.2 criterion used for golden images).  The
        residual actions are executed and the VM's classad updated —
        this is the workflow that lets a user install applications
        into a live workspace and later publish it via
        ``destroy(commit=True)``.
        """
        dag.validate()
        vm = self.infosys.get(vmid)
        line = self.lines[vm.vm_type]
        if match_performed(vm.performed_actions, dag) is not None:
            raise PlantError(
                f"VM {vmid!r} state conflicts with the extension DAG"
            )
        residual = dag.residual_after(
            [a.name for a in vm.performed_actions]
        )
        ctx = {
            "vmid": vmid,
            "client": vm.request.client_id,
            "plant": self.name,
        }
        ctx.update(context or {})
        start = self.env.now
        yield from self.ppp.run_actions(vm, line, dag, residual, ctx)
        vm.classad["extended_at"] = self.env.now
        vm.classad["extend_time"] = self.env.now - start
        return vm.classad.copy()

    def destroy(
        self,
        vmid: str,
        commit: bool = False,
        publish_as: Optional[str] = None,
    ) -> Generator:
        """Collect a VM; optionally publish its state as a new image.

        With ``commit=True`` the redo-log changes are committed and a
        derived golden image — the original plus the actions executed
        on this instance — is published under ``publish_as``, enabling
        the paper's install-once-instantiate-many workflow.
        """
        vm = self.infosys.get(vmid)
        line = self.lines[vm.vm_type]
        if commit:
            publish_id = publish_as or f"{vm.image.image_id}+{vmid}"
            base = len(vm.image.performed)
            executed = vm.performed_actions[base:]
            self.warehouse.publish(
                vm.image.with_performed(executed, image_id=publish_id)
            )
        yield from line.collect(vm)
        vm.status = VMStatus.COLLECTED
        vm.classad["status"] = vm.status.value
        vm.classad["collected_at"] = self.env.now
        self.infosys.remove(vmid)
        self.network_pool.detach(vmid)
        domain = self._vm_domain.pop(vmid, None)
        if self._vm_bridged.pop(vmid, False) and domain is not None:
            try:
                self.vnet_service.teardown_bridge(self.name, domain)
            except VNetError:
                pass  # bridge already gone (shared teardown)
        return vm.classad.copy()

    def kill_vm(self, vmid: str) -> VirtualMachine:
        """Synchronously destroy a VM without the graceful collect.

        The crash/orphan path: release host memory, drop the classad,
        detach the network lease and tear down any bridge — no
        simulated time passes (the VM died, nobody powers it off).
        """
        vm = self.infosys.get(vmid)
        line = self.lines[vm.vm_type]
        line.abort(vm)
        vm.status = VMStatus.FAILED
        vm.classad["status"] = vm.status.value
        self.infosys.remove(vmid)
        self.network_pool.detach(vmid)
        domain = self._vm_domain.pop(vmid, None)
        if self._vm_bridged.pop(vmid, False) and domain is not None:
            try:
                self.vnet_service.teardown_bridge(self.name, domain)
            except VNetError:
                pass
        trace(
            self.env, "plant", "vm-killed",
            plant=self.name, vmid=vmid,
        )
        return vm

    def abort_creation(self, vmid: str) -> List[str]:
        """Assert-and-release any partial creation state under ``vmid``.

        The shop calls this after a failed or deadline-aborted create
        so a fallthrough to the next bidder cannot leak the loser's
        network lease, host memory or infosys entry.  Idempotent and
        synchronous; returns the resource classes actually released
        (empty = the normal failure unwinding already cleaned up).
        """
        released: List[str] = []
        vm, line = self.ppp.abort_inflight(vmid)
        if vm is not None:
            if line.abort(vm):
                released.append("memory")
            released.append("production")
        if vmid in self.infosys:
            # The create finished plant-side but the response was
            # lost (deadline fired mid-reply): kill the orphan.
            self.kill_vm(vmid)
            released.append("vm")
        if self.network_pool.detach(vmid):
            released.append("network")
        domain = self._vm_domain.pop(vmid, None)
        if self._vm_bridged.pop(vmid, False) and domain is not None:
            try:
                self.vnet_service.teardown_bridge(self.name, domain)
            except VNetError:
                pass
        if released:
            trace(
                self.env, "plant", "abort-creation",
                plant=self.name, vmid=vmid,
                released=",".join(released),
            )
        return released

    # -- fault injection -----------------------------------------------------
    def fail(self) -> int:
        """Crash this plant's host (fault injection).

        Resident VMs die instantly (memory released, leases detached),
        the host's golden-state caches and speculative pools are
        invalidated, and the plant stops bidding until
        :meth:`recover`.  Returns the number of VMs killed.
        """
        if self.down:
            return 0
        self.down = True
        self._up_event = self.env.event()
        killed = 0
        for vm in list(self.infosys.active()):
            self.kill_vm(vm.vmid)
            killed += 1
        for line in self.lines.values():
            line.host_crashed()
        if self.speculative is not None:
            self.speculative.invalidate()
        trace(
            self.env, "plant", "crashed",
            plant=self.name, killed=killed,
        )
        return killed

    def recover(self) -> None:
        """Bring a crashed plant back into service."""
        if not self.down:
            return
        self.down = False
        for line in self.lines.values():
            line.host_recovered()
        up = self._up_event
        self._up_event = None
        if up is not None:
            up.succeed()
        trace(self.env, "plant", "recovered", plant=self.name)

    def cordon(self) -> None:
        """Enter maintenance mode: decline all new bids.

        Existing VMs keep running; combine with
        :meth:`~repro.plant.migration.MigrationManager.drain` to empty
        the plant before taking the host down — the "simplified
        resource administration" workflow of Section 2.
        """
        self.cordoned = True

    def uncordon(self) -> None:
        """Leave maintenance mode and resume bidding."""
        self.cordoned = False

    def handle_xml(self, request_xml: str, vmid: Optional[str] = None):
        """Dispatch one XML service request (the prototype's wire form).

        Returns a generator for create/destroy (they take simulated
        time) and an immediate value for query/estimate:

        * ``create`` → generator yielding the new VM's classad text;
        * ``estimate`` → the bid (float) or None;
        * ``query`` → classad text;
        * ``destroy`` → generator yielding the final classad text.

        ``vmid`` must be supplied for create (the shop assigns ids).
        """
        from repro.shop.protocol import service_request_from_xml

        service, request = service_request_from_xml(request_xml)
        if service == "create":
            if vmid is None:
                raise PlantError("create requires a shop-assigned vmid")

            def _create():
                ad = yield from self.create(request, vmid)
                return ad.to_string()

            return _create()
        if service == "estimate":
            return self.estimate(request)
        if service == "query":
            return self.query(
                request.vmid, request.attributes
            ).to_string()
        if service == "destroy":

            def _destroy():
                ad = yield from self.destroy(
                    request.vmid, request.commit, request.publish_as
                )
                return ad.to_string()

            return _destroy()
        raise PlantError(f"unsupported service {service!r}")

    # -- migration support (driven by plant.migration) -----------------------
    def begin_migration(self, vmid: str) -> VirtualMachine:
        """Validate and mark a VM as migrating out of this plant."""
        vm = self.infosys.get(vmid)
        if vm.status is not VMStatus.RUNNING:
            raise PlantError(
                f"VM {vmid!r} is {vm.status.value}, not running"
            )
        line = self.lines[vm.vm_type]
        if not line.supports_migration():
            raise PlantError(
                f"{vm.vm_type} line on {self.name} cannot migrate"
            )
        vm.status = VMStatus.MIGRATING
        return vm

    def complete_migration_out(self, vmid: str) -> None:
        """Drop all local state for a VM that migrated away."""
        self.infosys.remove(vmid)
        self.network_pool.detach(vmid)
        domain = self._vm_domain.pop(vmid, None)
        if self._vm_bridged.pop(vmid, False) and domain is not None:
            try:
                self.vnet_service.teardown_bridge(self.name, domain)
            except VNetError:
                pass

    def adopt_migrated(self, vm: VirtualMachine, assignment) -> None:
        """Register a VM that migrated onto this plant."""
        domain = vm.request.network.domain
        vm.status = VMStatus.RUNNING
        vm.network_id = assignment.network_id
        self.infosys.store(vm)
        self._vm_domain[vm.vmid] = domain
        self._vm_bridged[vm.vmid] = False
        ad = vm.classad
        ad["plant"] = self.name
        ad["network_id"] = assignment.network_id
        ad["ip"] = assignment.ip_address
        ad["status"] = vm.status.value

    def __repr__(self) -> str:
        return (
            f"<VMPlant {self.name} vms={len(self.infosys)}"
            f" lines={sorted(self.lines)}>"
        )
