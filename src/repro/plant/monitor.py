"""Run-time VM monitor.

A small daemon process (Figure 2, "VM monitor") that periodically
refreshes dynamic attributes — uptime, status, count of configuration
actions — in each active VM's classad, so shop queries observe fresh
state without the shop holding any of it.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.errors import ReproError
from repro.plant.infosys import VMInformationSystem
from repro.plant.production import VMStatus
from repro.sim.kernel import Environment, Interrupt, Process

__all__ = ["VMMonitor"]


class VMMonitor:
    """Periodic classad refresher for one plant."""

    def __init__(
        self,
        env: Environment,
        infosys: VMInformationSystem,
        period: float = 30.0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.infosys = infosys
        self.period = period
        self.sweeps = 0
        #: vmids whose refresh raised (e.g. removed mid-sweep by a
        #: crash); the sweep keeps going.
        self.failed: List[str] = []
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        """Launch the monitoring process."""
        if self._proc is not None and self._proc.is_alive:
            return self._proc
        self._proc = self.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        """Terminate the monitoring process."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")

    def sweep(self) -> None:
        """One immediate refresh pass over all active VMs.

        A VM torn down mid-sweep (host crash, concurrent destroy) is
        recorded in :attr:`failed` instead of aborting the pass.
        """
        now = self.env.now
        for vm in list(self.infosys.active()):
            started = vm.classad.get("created_at")
            attrs = {
                "status": vm.status.value,
                "monitored_at": now,
                "actions_completed": len(vm.results),
            }
            if isinstance(started, (int, float)) and vm.status is VMStatus.RUNNING:
                attrs["uptime"] = now - float(started)
            try:
                self.infosys.update(vm.vmid, attrs)
            except ReproError:
                self.failed.append(vm.vmid)
        self.sweeps += 1

    def _run(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(self.period)
                self.sweep()
        except Interrupt:
            return
