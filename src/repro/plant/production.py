"""Production-line interface and the plant-level VM object.

Section 2 of the paper identifies the two core mechanisms every VM
technology offers: state encapsulated as data, and instantiation by a
control process.  A :class:`ProductionLine` wraps those mechanisms for
one technology (VMware GSX, UML, a real directory-backed analogue …)
behind a uniform interface the PPP drives.

All operations are simulation-kernel *process generators*: they
``yield`` events and are composed with ``yield from``.  A line doing
real work (the local line) performs it inside the generator and yields
zero-delay timeouts, so the same PPP code drives both simulated and
real production.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Generator, List, Optional

from repro.core.actions import Action, ActionResult
from repro.core.classad import ClassAd
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest
from repro.plant.warehouse import GoldenImage

__all__ = ["CloneMode", "VMStatus", "VirtualMachine", "ProductionLine"]


class CloneMode(Enum):
    """How virtual-disk state reaches the clone (Section 3.2).

    LINK exploits storage commit (non-persistent disks / copy-on-write
    file systems): the clone soft-links the golden base disk and writes
    changes to a private redo log.  COPY replicates the full disk —
    the slow path the paper measures at 210 s for 2 GB.
    """

    LINK = "link"
    COPY = "copy"


class VMStatus(Enum):
    """Lifecycle of a plant-managed VM instance."""

    CLONING = "cloning"
    CONFIGURING = "configuring"
    RUNNING = "running"
    SUSPENDED = "suspended"
    MIGRATING = "migrating"
    FAILED = "failed"
    COLLECTED = "collected"


@dataclass
class VirtualMachine:
    """A plant-managed VM instance and its bookkeeping."""

    vmid: str
    image: GoldenImage
    request: CreateRequest
    vm_type: str
    status: VMStatus = VMStatus.CLONING
    classad: ClassAd = field(default_factory=ClassAd)
    #: Results of configuration actions, in execution order.
    results: List[ActionResult] = field(default_factory=list)
    #: Actions effectively performed on this instance (cached from the
    #: golden image + executed successfully), in order — the state the
    #: matching criterion sees if this VM is later published as an
    #: image or extended with a larger DAG.
    performed_actions: List[Action] = field(default_factory=list)
    #: Line-specific state (sim VM handle, clone directory, ...).
    backend: Any = None
    #: Host-only network id assigned by VNET support, if any.
    network_id: Optional[str] = None

    @property
    def memory_mb(self) -> int:
        """Guest memory size."""
        return self.image.hardware.memory_mb

    def record(self, result: ActionResult) -> None:
        """Append an action result and fold its outputs into the ad."""
        self.results.append(result)
        for key, value in result.outputs:
            self.classad[key] = value

    def __repr__(self) -> str:
        return f"<VM {self.vmid} {self.vm_type} {self.status.value}>"


class ProductionLine(ABC):
    """Clone-and-configure mechanism for one VM technology."""

    #: Technology name, e.g. ``"vmware"`` or ``"uml"``.
    vm_type: str = "abstract"

    @abstractmethod
    def clone(
        self,
        vm: VirtualMachine,
        mode: CloneMode = CloneMode.LINK,
    ) -> Generator:
        """Clone ``vm.image`` into a new instance and make it runnable.

        For a suspended-state technology (VMware) this copies the
        memory state and *resumes*; for a boot-based one (UML) it
        boots the clone.  Sets ``vm.backend`` and returns when the
        guest is ready to execute configuration scripts.  Raises
        :class:`~repro.core.errors.PlantError` on clone failure.
        """

    @abstractmethod
    def execute_action(
        self,
        vm: VirtualMachine,
        action: Action,
        context: Dict[str, str],
    ) -> Generator:
        """Run one configuration action; returns an ActionResult.

        Guest actions travel the paper's CD-ROM path: the command is
        rendered to a script, packed into an ISO image, connected to
        the clone, and executed by the guest daemon.  Host actions run
        directly on the VM host.  ``context`` carries request-scoped
        values (vmid, client, assigned IP ...) available to scripts.
        """

    @abstractmethod
    def collect(self, vm: VirtualMachine) -> Generator:
        """Destroy the instance and release its resources."""

    def can_host(self, request: CreateRequest) -> bool:
        """Quick admission check (capacity, technology support)."""
        return True

    def full_copy_time_estimate(self, image: GoldenImage) -> float:
        """Estimated seconds to fully copy the image's disk (ablation)."""
        return 0.0

    # -- fault hooks (repro.faults) ------------------------------------------
    def abort(self, vm: VirtualMachine) -> bool:
        """Synchronously release a VM's resources (crash/abort path).

        Idempotent; returns True when something was actually released.
        Lines with real resource accounting override this.
        """
        return False

    def host_crashed(self) -> None:
        """The hosting node died; drop any node-local state."""

    def host_recovered(self) -> None:
        """The hosting node came back up."""

    # -- migration hooks (Section 6 future work) -----------------------------
    # Lines that support migrating active VMs override all four; the
    # defaults decline.  The protocol, driven by
    # :class:`~repro.plant.migration.MigrationManager`:
    #   source.suspend → source.export_release (frees source resources,
    #   returns opaque state) → state transfer → target.receive.

    def supports_migration(self) -> bool:
        """Can this line suspend/export/receive VM state?"""
        return False

    def suspend(self, vm: VirtualMachine) -> Generator:
        """Checkpoint a running VM in place."""
        raise PlantError(
            f"{self.vm_type} production line does not support migration"
        )
        yield  # pragma: no cover - unreachable, makes this a generator

    def migration_payload_mb(self, vm: VirtualMachine) -> float:
        """State (MB) that must travel to the target plant."""
        raise PlantError(
            f"{self.vm_type} production line does not support migration"
        )

    def export_release(self, vm: VirtualMachine) -> Generator:
        """Detach the suspended VM from this line; returns its state."""
        raise PlantError(
            f"{self.vm_type} production line does not support migration"
        )
        yield  # pragma: no cover

    def receive(self, vm: VirtualMachine, state: Any) -> Generator:
        """Adopt a migrated VM's state and resume it on this line."""
        raise PlantError(
            f"{self.vm_type} production line does not support migration"
        )
        yield  # pragma: no cover
