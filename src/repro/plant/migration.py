"""Migration of active VMs across plants (Section 6 future work).

The paper lists "migration of active VMs across plants" as a research
direction; this module implements it on top of the ordinary plant and
production-line interfaces:

1. the source plant validates the VM and marks it MIGRATING;
2. the *target's* host-only network pool attaches the VM first (so a
   network shortage aborts before anything is suspended);
3. the source line suspends the VM and exports its state (memory image
   + private redo log + configuration file), freeing source resources;
4. the state travels over the inter-plant link (fair-shared, so
   concurrent migrations contend realistically);
5. the target line adopts the state and resumes the VM under its own
   memory pressure; bookkeeping moves and the shop is re-routed.

A failure in steps 1–2 leaves the VM running untouched at the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.core.classad import ClassAd
from repro.core.errors import PlantError
from repro.plant.vmplant import VMPlant
from repro.sim.kernel import Environment
from repro.sim.network import FairShareLink
from repro.sim.trace import trace

__all__ = ["MigrationRecord", "MigrationManager"]


@dataclass(frozen=True)
class MigrationRecord:
    """Timing breakdown of one completed migration."""

    vmid: str
    source: str
    target: str
    started_at: float
    payload_mb: float
    suspend_time: float
    transfer_time: float
    resume_time: float
    total_time: float


class MigrationManager:
    """Coordinates VM migrations over an inter-plant link."""

    def __init__(
        self,
        env: Environment,
        link: Optional[FairShareLink] = None,
    ):
        self.env = env
        #: Inter-node network (gigabit in the paper's testbed); None
        #: means instantaneous transfer (shared-storage migration).
        self.link = link
        self.records: List[MigrationRecord] = []

    def migrate(
        self,
        source: VMPlant,
        target: VMPlant,
        vmid: str,
        shop=None,
    ) -> Generator:
        """Move an active VM from ``source`` to ``target``.

        Returns the VM's updated classad.  ``shop`` (optional) gets
        its VMID routing updated so subsequent query/destroy calls
        reach the new plant.
        """
        if source is target:
            raise PlantError("source and target plants are the same")
        vm = source.begin_migration(vmid)
        try:
            line_src = source.lines[vm.vm_type]
            line_dst = target.lines.get(vm.vm_type)
            if line_dst is None or not line_dst.supports_migration():
                raise PlantError(
                    f"plant {target.name} cannot receive "
                    f"{vm.vm_type} migrations"
                )
            if (
                target.max_vms is not None
                and target.active_vm_count() >= target.max_vms
            ):
                raise PlantError(f"plant {target.name}: at VM capacity")
            # Reserve the target-side network before disturbing the VM.
            assignment = target.network_pool.attach(
                vm.request.network.domain, vmid
            )
        except Exception:
            from repro.plant.production import VMStatus

            vm.status = VMStatus.RUNNING
            raise

        started = self.env.now
        trace(
            self.env, "migration", "start",
            vmid=vmid, source=source.name, target=target.name,
        )

        suspend_start = self.env.now
        yield from line_src.suspend(vm)
        payload = line_src.migration_payload_mb(vm)
        state = yield from line_src.export_release(vm)
        suspend_time = self.env.now - suspend_start

        transfer_start = self.env.now
        if self.link is not None:
            yield self.link.transfer(payload)
        transfer_time = self.env.now - transfer_start

        resume_start = self.env.now
        yield from line_dst.receive(vm, state)
        resume_time = self.env.now - resume_start

        source.complete_migration_out(vmid)
        target.adopt_migrated(vm, assignment)
        ad: ClassAd = vm.classad
        ad["migrated_from"] = source.name
        ad["migrated_at"] = self.env.now
        ad["migration_time"] = self.env.now - started

        if shop is not None:
            shop.reroute(vmid, target)

        self.records.append(
            MigrationRecord(
                vmid=vmid,
                source=source.name,
                target=target.name,
                started_at=started,
                payload_mb=payload,
                suspend_time=suspend_time,
                transfer_time=transfer_time,
                resume_time=resume_time,
                total_time=self.env.now - started,
            )
        )
        trace(
            self.env, "migration", "done",
            vmid=vmid, seconds=round(self.env.now - started, 2),
        )
        return ad.copy()

    def drain(
        self,
        source: VMPlant,
        targets: List[VMPlant],
        shop=None,
    ) -> Generator:
        """Evacuate every VM from ``source`` (maintenance mode).

        Each VM's destination is chosen by cost bidding over the
        targets' cost models — the same economics as placement — so a
        drain naturally load-balances.  Returns the list of migrated
        vmids; VMs no target can take raise :class:`PlantError`.
        """
        if not targets or any(t is source for t in targets):
            raise PlantError(
                "drain needs at least one target distinct from the source"
            )
        migrated: List[str] = []
        for vm in list(source.infosys.active()):
            best: Optional[VMPlant] = None
            best_cost: Optional[float] = None
            for target in targets:
                cost = target.cost_model.estimate(target, vm.request)
                if cost is None:
                    continue
                if not target.network_pool.has_capacity_for(
                    vm.request.network.domain
                ):
                    continue
                if best_cost is None or cost < best_cost:
                    best, best_cost = target, cost
            if best is None:
                raise PlantError(
                    f"no target can take {vm.vmid!r} during drain"
                )
            yield from self.migrate(source, best, vm.vmid, shop=shop)
            migrated.append(vm.vmid)
        return migrated
