"""The VM Warehouse: golden images and their XML descriptors.

The warehouse stores "golden" machines — suspended VMs (or bootable
file systems) checkpointed after an off-line installation — each
described by an XML descriptor recording memory size, operating
system, and the ordered configuration actions already performed
(Section 3.2/4.1).  Image *state* consists of a configuration file,
a virtual disk spanned across several files, and (for suspended
images) a memory-state file; the sizes drive the cloning cost model.

VM installers publish new images via :meth:`VMWarehouse.publish`,
making customized application environments available for subsequent
instantiation — the paper's application-centric workflow.

Matching performance: the warehouse maintains a
:class:`~repro.core.matchindex.MatchIndex` incrementally on publish/
unpublish and serves :meth:`VMWarehouse.select` through it, memoizing
results per ``(dag fingerprint, hardware, os, vm_type)`` for the
current warehouse *generation* — so the plants of a site bidding on
the same request run the Section 3.2 tests once, not once per plant
per image.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.actions import Action
from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG
from repro.core.dagxml import action_from_element
from repro.core.errors import ProtocolError, WarehouseError
from repro.core.matching import MatchResult
from repro.core.matchindex import MatchIndex
from repro.core.spec import HardwareSpec

__all__ = ["GoldenImage", "VMWarehouse"]

#: Memo entries kept per generation before the table is reset; bounds
#: memory when a long-lived site sees many distinct request shapes.
_MEMO_LIMIT = 4096


@dataclass(frozen=True)
class GoldenImage:
    """Descriptor of one cached golden machine."""

    image_id: str
    vm_type: str
    os: str
    hardware: HardwareSpec
    #: Ordered configuration actions already performed on the image.
    performed: Tuple[Action, ...] = ()
    #: Virtual disk payload (MB) and the number of files spanning it.
    disk_state_mb: float = 2048.0
    disk_files: int = 16
    #: Suspended memory state (MB); 0 for boot-based images (UML).
    memory_state_mb: float = 0.0
    #: Base redo log replicated per clone (MB).
    base_redo_mb: float = 16.0
    #: VM configuration file (MB).
    config_mb: float = 0.1

    def __post_init__(self) -> None:
        if self.disk_state_mb < 0 or self.memory_state_mb < 0:
            raise ValueError("state sizes must be non-negative")
        if self.disk_files <= 0:
            raise ValueError("disk_files must be positive")

    @property
    def performed_names(self) -> Tuple[str, ...]:
        """Names of performed operations, in order."""
        return tuple(a.name for a in self.performed)

    @property
    def clone_payload_mb(self) -> float:
        """State replicated per LINK clone (everything but the disk)."""
        return self.config_mb + self.base_redo_mb + self.memory_state_mb

    def with_performed(
        self, extra: Iterable[Action], image_id: Optional[str] = None
    ) -> "GoldenImage":
        """Derived image with more operations performed (publishing)."""
        return replace(
            self,
            image_id=image_id or self.image_id,
            performed=self.performed + tuple(extra),
        )

    # -- descriptors -------------------------------------------------------
    def to_classad(self) -> ClassAd:
        """Classad description (used in query results and caching)."""
        return ClassAd(
            {
                "image_id": self.image_id,
                "vm_type": self.vm_type,
                "os": self.os,
                "memory_mb": self.hardware.memory_mb,
                "disk_gb": self.hardware.disk_gb,
                "performed": list(self.performed_names),
            }
        )

    def to_element(self) -> ET.Element:
        """The warehouse XML descriptor as an Element tree.

        :meth:`VMWarehouse.dump_xml` appends these directly instead of
        round-tripping every image through string parsing.
        """
        root = ET.Element(
            "golden-image",
            {
                "id": self.image_id,
                "vm-type": self.vm_type,
                "os": self.os,
                "isa": self.hardware.isa,
                "memory-mb": str(self.hardware.memory_mb),
                "disk-gb": repr(self.hardware.disk_gb),
                "cpus": str(self.hardware.cpus),
                "disk-state-mb": repr(self.disk_state_mb),
                "disk-files": str(self.disk_files),
                "memory-state-mb": repr(self.memory_state_mb),
                "base-redo-mb": repr(self.base_redo_mb),
                "config-mb": repr(self.config_mb),
            },
        )
        performed_el = ET.SubElement(root, "performed")
        for action in self.performed:
            el = ET.SubElement(
                performed_el,
                "action",
                {
                    "name": action.name,
                    "scope": action.scope.value,
                    "command": action.command,
                    "on-error": action.on_error.value,
                    "retries": str(action.retries),
                },
            )
            for key, value in action.params:
                ET.SubElement(el, "param", {"key": key, "value": value})
            for out in action.outputs:
                ET.SubElement(el, "output", {"name": out})
        return root

    def to_xml(self) -> str:
        """The warehouse XML descriptor as a string (thin wrapper)."""
        return ET.tostring(self.to_element(), encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "GoldenImage":
        """Parse a warehouse XML descriptor (strict)."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ProtocolError(f"malformed XML: {exc}") from exc
        if root.tag != "golden-image":
            raise ProtocolError(
                f"expected <golden-image>, got <{root.tag}>"
            )

        def req(attr: str) -> str:
            value = root.get(attr)
            if value is None:
                raise ProtocolError(
                    f"<golden-image> missing attribute {attr!r}"
                )
            return value

        performed: List[Action] = []
        performed_el = root.find("performed")
        if performed_el is not None:
            for el in performed_el:
                if el.tag != "action":
                    raise ProtocolError(
                        f"unexpected element <{el.tag}> in <performed>"
                    )
                performed.append(action_from_element(el))
        try:
            hardware = HardwareSpec(
                isa=root.get("isa", "x86"),
                memory_mb=int(req("memory-mb")),
                disk_gb=float(req("disk-gb")),
                cpus=int(root.get("cpus", "1")),
            )
            return cls(
                image_id=req("id"),
                vm_type=req("vm-type"),
                os=req("os"),
                hardware=hardware,
                performed=tuple(performed),
                disk_state_mb=float(root.get("disk-state-mb", "2048.0")),
                disk_files=int(root.get("disk-files", "16")),
                memory_state_mb=float(root.get("memory-state-mb", "0.0")),
                base_redo_mb=float(root.get("base-redo-mb", "16.0")),
                config_mb=float(root.get("config-mb", "0.1")),
            )
        except ValueError as exc:
            raise ProtocolError(f"bad golden-image attribute: {exc}") from exc


class VMWarehouse:
    """Store of golden images, shared by the plants of a site.

    In the prototype the warehouse is an NFS-mounted directory tree;
    here it is an in-memory map plus optional XML persistence, with
    the image *state* transfer costs modelled by whichever storage
    substrate the production line is attached to.
    """

    def __init__(self, images: Iterable[GoldenImage] = ()):
        self._images: Dict[str, GoldenImage] = {}
        self._index = MatchIndex()
        #: Bumped on every publish/unpublish; keys the match memo.
        self.generation = 0
        self._memo: Dict[tuple, Tuple[Optional[GoldenImage], Optional[MatchResult]]] = {}
        self._memo_generation = 0
        #: Query/hit counters for benchmarks and experiments.
        self.match_stats: Dict[str, int] = {"queries": 0, "memo_hits": 0}
        for image in images:
            self.publish(image)

    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._images

    def publish(self, image: GoldenImage) -> None:
        """Add an image; ids must be unique."""
        if image.image_id in self._images:
            raise WarehouseError(
                f"image id {image.image_id!r} already published"
            )
        self._images[image.image_id] = image
        self._index.add(image)
        self.generation += 1

    def unpublish(self, image_id: str) -> GoldenImage:
        """Remove and return an image."""
        try:
            image = self._images.pop(image_id)
        except KeyError:
            raise WarehouseError(f"no image {image_id!r}") from None
        self._index.remove(image_id)
        self.generation += 1
        return image

    def get(self, image_id: str) -> GoldenImage:
        """Look up an image by id."""
        try:
            return self._images[image_id]
        except KeyError:
            raise WarehouseError(f"no image {image_id!r}") from None

    def images(self, vm_type: Optional[str] = None) -> List[GoldenImage]:
        """All images (optionally restricted to one technology)."""
        return [
            img
            for img in self._images.values()
            if vm_type is None or img.vm_type == vm_type
        ]

    # -- matching ------------------------------------------------------------
    def select(
        self,
        dag: ConfigDAG,
        hardware: HardwareSpec,
        os: str,
        vm_type: Optional[str] = None,
    ) -> Tuple[Optional[GoldenImage], Optional[MatchResult]]:
        """Best-matching golden image via the index, memoized.

        Bit-identical to running the brute-force
        :func:`~repro.core.matching.select_golden` over
        :meth:`images`: same winning image, same satisfied/residual
        tuples.  Results are memoized per ``(dag fingerprint,
        hardware, os, vm_type)`` and invalidated by generation — any
        publish/unpublish makes every memoized entry stale at once,
        which is what lets P plants bidding on one request share a
        single evaluation of the Section 3.2 tests.
        """
        dag.validate()
        self.match_stats["queries"] += 1
        if self._memo_generation != self.generation:
            self._memo.clear()
            self._memo_generation = self.generation
        key = (dag.fingerprint(), hardware, os, vm_type)
        hit = self._memo.get(key)
        if hit is not None:
            self.match_stats["memo_hits"] += 1
            if hit[0] is not None:
                self._index.note_select(hit[0].image_id)
            return hit
        selection = self._index.select(dag, hardware, os, vm_type)
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = selection
        if selection[0] is not None:
            self._index.note_select(selection[0].image_id)
        return selection

    @property
    def index_stats(self) -> Dict[str, int]:
        """The match index's query counters (read-only snapshot)."""
        return dict(self._index.stats)

    @property
    def popularity(self) -> Dict[str, int]:
        """Selection wins per image id (memo hits included).

        The replica placer ranks images by this to decide which state
        to pre-push onto seed hosts; snapshot, safe to mutate.
        """
        return dict(self._index.popularity)

    # -- persistence ---------------------------------------------------------
    def dump_xml(self) -> str:
        """All descriptors as one ``<warehouse>`` document."""
        root = ET.Element("warehouse")
        for image in self._images.values():
            root.append(image.to_element())
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def load_xml(cls, text: str) -> "VMWarehouse":
        """Rebuild a warehouse from :meth:`dump_xml` output."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ProtocolError(f"malformed XML: {exc}") from exc
        if root.tag != "warehouse":
            raise ProtocolError(f"expected <warehouse>, got <{root.tag}>")
        wh = cls()
        for child in root:
            wh.publish(
                GoldenImage.from_xml(ET.tostring(child, encoding="unicode"))
            )
        return wh
