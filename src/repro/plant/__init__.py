"""The VMPlant service: PPP, warehouse, production lines, monitoring.

Mirrors Figure 2 of the paper.  A :class:`~repro.plant.vmplant.VMPlant`
daemon runs on every physical resource and wires together:

* the Production Process Planner (:mod:`repro.plant.ppp`) that matches
  creation requests against warehouse images and plans clone+configure;
* the VM Warehouse (:mod:`repro.plant.warehouse`) of golden images;
* one production line per supported VM technology
  (:mod:`repro.plant.production` defines the interface; simulated
  VMware/UML lines live in :mod:`repro.sim.hypervisor`, a real
  filesystem-backed line in :mod:`repro.local.localline`);
* the VM Information System (:mod:`repro.plant.infosys`) and run-time
  monitor (:mod:`repro.plant.monitor`).
"""

from repro.plant.infosys import VMInformationSystem
from repro.plant.migration import MigrationManager, MigrationRecord
from repro.plant.monitor import VMMonitor
from repro.plant.ppp import ProductionOrder, ProductionProcessPlanner
from repro.plant.production import (
    CloneMode,
    ProductionLine,
    VirtualMachine,
    VMStatus,
)
from repro.plant.speculative import SpeculativeClonePool
from repro.plant.vmplant import VMPlant
from repro.plant.warehouse import GoldenImage, VMWarehouse

__all__ = [
    "CloneMode",
    "GoldenImage",
    "MigrationManager",
    "MigrationRecord",
    "ProductionLine",
    "ProductionOrder",
    "ProductionProcessPlanner",
    "SpeculativeClonePool",
    "VMInformationSystem",
    "VMMonitor",
    "VMPlant",
    "VMStatus",
    "VMWarehouse",
    "VirtualMachine",
]
