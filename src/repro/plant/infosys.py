"""The VM Information System: classads of active machines.

Each VMPlant maintains the classads of the VMs it hosts (Figure 2);
the VMShop deliberately does *not* hold this state, which is what
makes shop restarts cheap (Section 3.1).  The information system
supports lookup, attribute queries, updates from the run-time monitor,
and removal at collection time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.classad import ClassAd, Value
from repro.core.errors import PlantError
from repro.plant.production import VirtualMachine

__all__ = ["VMInformationSystem"]


class VMInformationSystem:
    """Plant-local registry of active VM instances.

    ``version`` increments on every mutation (store/remove/rename/
    update), letting consumers — the plant's ``description_ad`` memo —
    cheaply detect staleness without hashing the VM set.
    """

    def __init__(self) -> None:
        self._vms: Dict[str, VirtualMachine] = {}
        #: Monotonic mutation counter (memo invalidation).
        self.version = 0

    def __len__(self) -> int:
        return len(self._vms)

    def __contains__(self, vmid: str) -> bool:
        return vmid in self._vms

    def store(self, vm: VirtualMachine) -> None:
        """Register a newly produced VM."""
        if vm.vmid in self._vms:
            raise PlantError(f"vmid {vm.vmid!r} already registered")
        self._vms[vm.vmid] = vm
        self.version += 1

    def get(self, vmid: str) -> VirtualMachine:
        """Look up an active VM."""
        try:
            return self._vms[vmid]
        except KeyError:
            raise PlantError(f"no active VM {vmid!r}") from None

    def remove(self, vmid: str) -> VirtualMachine:
        """Deregister a collected VM."""
        try:
            vm = self._vms.pop(vmid)
        except KeyError:
            raise PlantError(f"no active VM {vmid!r}") from None
        self.version += 1
        return vm

    def rename(self, old: str, new: str) -> VirtualMachine:
        """Re-register a VM under a new vmid (pooled-VM adoption)."""
        if new in self._vms:
            raise PlantError(f"vmid {new!r} already registered")
        vm = self.remove(old)
        vm.vmid = new
        self._vms[new] = vm
        self.version += 1
        return vm

    def active(self) -> List[VirtualMachine]:
        """All active VMs, in registration order."""
        return list(self._vms.values())

    def update(self, vmid: str, attrs: Dict[str, Value]) -> None:
        """Merge monitor-gathered attributes into a VM's classad."""
        vm = self.get(vmid)
        for key, value in attrs.items():
            vm.classad[key] = value
        self.version += 1

    def query(
        self, vmid: str, attributes: Iterable[str] = ()
    ) -> ClassAd:
        """Classad (or a projection of it) for one VM."""
        vm = self.get(vmid)
        wanted: Tuple[str, ...] = tuple(attributes)
        if not wanted:
            return vm.classad.copy()
        projection = ClassAd()
        for attr in wanted:
            projection[attr] = vm.classad.lookup(attr)
        return projection

    def total_guest_memory_mb(self) -> int:
        """Aggregate guest memory of active VMs (cost/bidding input)."""
        return sum(vm.memory_mb for vm in self._vms.values())
