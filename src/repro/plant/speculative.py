"""Speculative pre-creation of VM clones (Section 6, future work).

The paper suggests hiding instantiation latency by cloning golden
machines *before* requests arrive.  :class:`SpeculativeClonePool`
implements that on top of the ordinary plant services: it pre-creates
clones of a prototype request whose DAG is exactly the golden image's
performed prefix (so no configuration work happens at fill time), and
serves later requests by *extending* a pooled VM with the request's
residual actions — paying only the configuration cost at request time.

Pooled VMs are domain-bound (they were attached to the prototype
domain's host-only network at fill time), so a pool serves one client
domain; acquire falls back to ``None`` on any mismatch and the caller
creates normally.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError, ReproError
from repro.core.spec import CreateRequest, SoftwareSpec
from repro.plant.vmplant import VMPlant

__all__ = ["SpeculativeClonePool", "AdaptiveSpeculativePool"]


class SpeculativeClonePool:
    """Pre-warmed clones for one (plant, image, domain) combination."""

    def __init__(
        self,
        plant: VMPlant,
        prototype: CreateRequest,
        target: int = 2,
        vmid_prefix: str = "spec",
    ):
        if target < 0:
            raise ValueError("target must be non-negative")
        base_dag = self._base_dag(plant, prototype)
        self.plant = plant
        self.prototype = prototype
        self.base_request = CreateRequest(
            hardware=prototype.hardware,
            software=SoftwareSpec(os=prototype.software.os, dag=base_dag),
            network=prototype.network,
            client_id=f"{prototype.client_id}-speculative",
            vm_type=prototype.vm_type,
        )
        self.target = target
        self.vmid_prefix = vmid_prefix
        self._seq = 0
        self._pool: List[str] = []
        #: Pool statistics for the ablation benches.
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _base_dag(plant: VMPlant, prototype: CreateRequest) -> ConfigDAG:
        """DAG covering exactly the matched golden image's prefix."""
        image, result = plant.warehouse.select(
            prototype.dag,
            prototype.hardware,
            prototype.software.os,
            prototype.vm_type,
        )
        if image is None or result is None:
            raise PlantError(
                "no golden image matches the speculative prototype"
            )
        return prototype.dag.subdag(result.satisfied)

    # -- pool management -----------------------------------------------------
    @property
    def size(self) -> int:
        """Clones currently idling in the pool."""
        return len(self._pool)

    def fill(self) -> Generator:
        """Pre-create clones until the pool holds ``target`` VMs.

        Returns the number of clones created.  Intended to run in the
        background (e.g. ``env.process(pool.fill())``) between
        requests.
        """
        created = 0
        while len(self._pool) < self.target:
            self._seq += 1
            vmid = f"{self.vmid_prefix}-{self.plant.name}-{self._seq}"
            yield from self.plant.create(self.base_request, vmid)
            self._pool.append(vmid)
            created += 1
        return created

    def _compatible(self, request: CreateRequest) -> bool:
        proto = self.prototype
        return (
            request.network.domain == proto.network.domain
            and request.hardware == proto.hardware
            and request.software.os == proto.software.os
            and request.vm_type == proto.vm_type
        )

    def acquire(
        self, request: CreateRequest, vmid: Optional[str] = None
    ) -> Generator:
        """Serve ``request`` from the pool; returns a classad or None.

        On a hit the pooled clone is extended with the request's
        residual configuration — the client-visible latency is just
        that configuration time.  With ``vmid`` given (the shop
        assigns ids) the pooled clone is first *adopted* under that
        id, so the client sees an ordinary machine.  On a miss (empty
        pool or incompatible request) the caller should fall back to a
        normal ``create``.
        """
        if not self._pool or not self._compatible(request):
            self.misses += 1
            return None
        pooled = self._pool.pop(0)
        serving = pooled
        if vmid is not None:
            self.plant.rename_vm(pooled, vmid)
            serving = vmid
        try:
            ad: ClassAd = yield from self.plant.extend(
                serving, request.dag, {"client": request.client_id}
            )
        except PlantError:
            # Extension mismatch: the clone stays usable for others.
            if vmid is not None:
                self.plant.rename_vm(vmid, pooled)
            self._pool.insert(0, pooled)
            self.misses += 1
            return None
        self.plant.infosys.update(serving, {"client": request.client_id})
        self.hits += 1
        ad["speculative"] = True
        ad["client"] = request.client_id
        return ad

    def invalidate(self) -> int:
        """Forget all idle pooled clones without collecting them.

        Crash path: the host already killed the VMs, so the pool just
        drops its slots.  Returns the number of slots dropped.
        """
        dropped = len(self._pool)
        self._pool.clear()
        return dropped

    def drain(self) -> Generator:
        """Collect all idle pooled clones (shutdown path)."""
        drained = 0
        while self._pool:
            vmid = self._pool.pop()
            yield from self.plant.destroy(vmid)
            drained += 1
        return drained


#: Pool identity: one pool per (domain, OS, hardware, vm_type).
PoolKey = Tuple[str, str, object, Optional[str]]


class AdaptiveSpeculativePool:
    """Demand-sized speculative pools for one plant.

    Lazily opens a :class:`SpeculativeClonePool` per (domain, OS,
    hardware, vm_type) combination it sees traffic for, remembers the
    last ``window`` arrival times per pool, and resizes each pool
    toward ``target_hit_rate`` of the arrivals expected within one
    clone ``lead_time_s``.  Refills run as background processes so
    pre-creation stays off the request critical path; the plant quotes
    ``bid_discount`` × its normal cost while a pooled VM can serve the
    request (an extend is far cheaper than a full clone).
    """

    def __init__(
        self,
        plant: VMPlant,
        target_hit_rate: float = 0.9,
        min_target: int = 0,
        max_target: int = 4,
        window: int = 8,
        lead_time_s: float = 45.0,
        bid_discount: float = 0.25,
    ):
        if not 0.0 < target_hit_rate <= 1.0:
            raise ValueError("target_hit_rate must be in (0, 1]")
        if min_target < 0 or max_target < min_target:
            raise ValueError("need 0 <= min_target <= max_target")
        if window < 2:
            raise ValueError("window must be at least 2")
        if lead_time_s <= 0:
            raise ValueError("lead_time_s must be positive")
        if not 0.0 < bid_discount <= 1.0:
            raise ValueError("bid_discount must be in (0, 1]")
        self.plant = plant
        self.env = plant.env
        self.target_hit_rate = target_hit_rate
        self.min_target = min_target
        self.max_target = max_target
        self.window = window
        self.lead_time_s = lead_time_s
        self.bid_discount = bid_discount
        self._pools: Dict[PoolKey, SpeculativeClonePool] = {}
        self._arrivals: Dict[PoolKey, Deque[float]] = {}
        #: Keys whose pool is unusable (no matching golden image).
        self._dead: Set[PoolKey] = set()
        self._refilling: Set[PoolKey] = set()
        self.hits = 0
        self.misses = 0
        self.refills_started = 0

    @staticmethod
    def _key(request: CreateRequest) -> PoolKey:
        return (
            request.network.domain,
            request.software.os,
            request.hardware,
            request.vm_type,
        )

    @staticmethod
    def _is_fill_request(request: CreateRequest) -> bool:
        return request.client_id.endswith("-speculative")

    @property
    def hit_rate(self) -> float:
        """Fraction of tracked requests served from a pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def pool_count(self) -> int:
        return len(self._pools)

    @property
    def pooled_vms(self) -> int:
        """Idle clones across all pools."""
        return sum(p.size for p in self._pools.values())

    # -- sizing --------------------------------------------------------------
    def _observe(self, key: PoolKey) -> None:
        arrivals = self._arrivals.get(key)
        if arrivals is None:
            arrivals = deque(maxlen=self.window)
            self._arrivals[key] = arrivals
        arrivals.append(self.env.now)

    def _desired_target(self, key: PoolKey) -> int:
        """Pool depth to cover ``lead_time_s`` of observed demand."""
        arrivals = self._arrivals.get(key)
        if not arrivals:
            return self.min_target
        if len(arrivals) < 2:
            want = 1
        else:
            span = arrivals[-1] - arrivals[0]
            if span <= 0.0:
                want = self.max_target
            else:
                rate = (len(arrivals) - 1) / span
                want = math.ceil(
                    rate * self.lead_time_s * self.target_hit_rate
                )
        return max(self.min_target, min(self.max_target, want))

    # -- pool plumbing -------------------------------------------------------
    def _pool_for(self, request: CreateRequest) -> Optional[SpeculativeClonePool]:
        key = self._key(request)
        if key in self._dead:
            return None
        pool = self._pools.get(key)
        if pool is None:
            try:
                pool = SpeculativeClonePool(
                    self.plant,
                    request,
                    target=0,
                    vmid_prefix=f"spec{len(self._pools)}",
                )
            except PlantError:
                # No golden image matches: never poolable.
                self._dead.add(key)
                return None
            self._pools[key] = pool
        return pool

    def _schedule_refill(self, key: PoolKey, pool: SpeculativeClonePool) -> None:
        pool.target = self._desired_target(key)
        if pool.size >= pool.target or key in self._refilling:
            return
        self._refilling.add(key)
        self.refills_started += 1
        self.env.process(self._refill(key, pool))

    def _refill(self, key: PoolKey, pool: SpeculativeClonePool) -> Generator:
        try:
            yield from pool.fill()
        except ReproError:
            pass  # plant at capacity / network exhausted: retry later
        finally:
            self._refilling.discard(key)

    # -- request path --------------------------------------------------------
    def available(self, request: CreateRequest) -> bool:
        """Could ``request`` be served from an idle pooled clone now?"""
        if self._is_fill_request(request):
            return False
        # The pool key covers exactly the `_compatible` fields
        # (domain, os, hardware, vm_type), so the lookup already
        # implies compatibility — no per-bid recheck needed.
        pool = self._pools.get(self._key(request))
        return pool is not None and pool.size > 0

    def acquire(
        self, request: CreateRequest, vmid: Optional[str] = None
    ) -> Generator:
        """Serve from a pool if possible; returns a classad or None.

        Always observes the arrival and (re)sizes the matching pool,
        so misses teach the manager to pre-create for next time.
        """
        if self._is_fill_request(request):
            return None  # a pool's own fill traffic is not demand
        key = self._key(request)
        self._observe(key)
        pool = self._pool_for(request)
        if pool is None:
            self.misses += 1
            return None
        ad = yield from pool.acquire(request, vmid)
        if ad is not None:
            self.hits += 1
        else:
            self.misses += 1
        self._schedule_refill(key, pool)
        return ad

    def invalidate(self) -> int:
        """Drop every idle pooled slot (host crash path)."""
        return sum(pool.invalidate() for pool in self._pools.values())

    def drain(self) -> Generator:
        """Collect every idle pooled clone (shutdown path)."""
        drained = 0
        for pool in self._pools.values():
            pool.target = 0
            count = yield from pool.drain()
            drained += count
        return drained

    def shutdown(self) -> Generator:
        """Drain until empty *and* no refill is in flight.

        ``drain`` alone can race a refill: the clone being created
        when targets are zeroed still lands in its pool afterwards.
        Shutdown keeps draining until the refill processes settle, so
        nothing idle survives it — the end-of-run leak audit relies
        on this.
        """
        drained = 0
        while True:
            count = yield from self.drain()
            drained += count
            if not self._refilling and self.pooled_vms == 0:
                return drained
            yield self.env.timeout(1.0)

    def __repr__(self) -> str:
        return (
            f"<AdaptiveSpeculativePool {self.plant.name}"
            f" pools={len(self._pools)} idle={self.pooled_vms}"
            f" hit_rate={self.hit_rate:.2f}>"
        )
