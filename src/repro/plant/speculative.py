"""Speculative pre-creation of VM clones (Section 6, future work).

The paper suggests hiding instantiation latency by cloning golden
machines *before* requests arrive.  :class:`SpeculativeClonePool`
implements that on top of the ordinary plant services: it pre-creates
clones of a prototype request whose DAG is exactly the golden image's
performed prefix (so no configuration work happens at fill time), and
serves later requests by *extending* a pooled VM with the request's
residual actions — paying only the configuration cost at request time.

Pooled VMs are domain-bound (they were attached to the prototype
domain's host-only network at fill time), so a pool serves one client
domain; acquire falls back to ``None`` on any mismatch and the caller
creates normally.
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest, SoftwareSpec
from repro.plant.vmplant import VMPlant

__all__ = ["SpeculativeClonePool"]


class SpeculativeClonePool:
    """Pre-warmed clones for one (plant, image, domain) combination."""

    def __init__(
        self,
        plant: VMPlant,
        prototype: CreateRequest,
        target: int = 2,
        vmid_prefix: str = "spec",
    ):
        if target < 0:
            raise ValueError("target must be non-negative")
        base_dag = self._base_dag(plant, prototype)
        self.plant = plant
        self.prototype = prototype
        self.base_request = CreateRequest(
            hardware=prototype.hardware,
            software=SoftwareSpec(os=prototype.software.os, dag=base_dag),
            network=prototype.network,
            client_id=f"{prototype.client_id}-speculative",
            vm_type=prototype.vm_type,
        )
        self.target = target
        self.vmid_prefix = vmid_prefix
        self._seq = 0
        self._pool: List[str] = []
        #: Pool statistics for the ablation benches.
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _base_dag(plant: VMPlant, prototype: CreateRequest) -> ConfigDAG:
        """DAG covering exactly the matched golden image's prefix."""
        image, result = plant.warehouse.select(
            prototype.dag,
            prototype.hardware,
            prototype.software.os,
            prototype.vm_type,
        )
        if image is None or result is None:
            raise PlantError(
                "no golden image matches the speculative prototype"
            )
        return prototype.dag.subdag(result.satisfied)

    # -- pool management -----------------------------------------------------
    @property
    def size(self) -> int:
        """Clones currently idling in the pool."""
        return len(self._pool)

    def fill(self) -> Generator:
        """Pre-create clones until the pool holds ``target`` VMs.

        Returns the number of clones created.  Intended to run in the
        background (e.g. ``env.process(pool.fill())``) between
        requests.
        """
        created = 0
        while len(self._pool) < self.target:
            self._seq += 1
            vmid = f"{self.vmid_prefix}-{self.plant.name}-{self._seq}"
            yield from self.plant.create(self.base_request, vmid)
            self._pool.append(vmid)
            created += 1
        return created

    def _compatible(self, request: CreateRequest) -> bool:
        proto = self.prototype
        return (
            request.network.domain == proto.network.domain
            and request.hardware == proto.hardware
            and request.software.os == proto.software.os
            and request.vm_type == proto.vm_type
        )

    def acquire(self, request: CreateRequest) -> Generator:
        """Serve ``request`` from the pool; returns a classad or None.

        On a hit the pooled clone is extended with the request's
        residual configuration — the client-visible latency is just
        that configuration time.  On a miss (empty pool or
        incompatible request) the caller should fall back to a normal
        ``create``.
        """
        if not self._pool or not self._compatible(request):
            self.misses += 1
            return None
        vmid = self._pool.pop(0)
        try:
            ad: ClassAd = yield from self.plant.extend(
                vmid, request.dag, {"client": request.client_id}
            )
        except PlantError:
            # Extension mismatch: the clone stays usable for others.
            self._pool.insert(0, vmid)
            self.misses += 1
            return None
        self.hits += 1
        ad["speculative"] = True
        return ad

    def drain(self) -> Generator:
        """Collect all idle pooled clones (shutdown path)."""
        drained = 0
        while self._pool:
            vmid = self._pool.pop()
            yield from self.plant.destroy(vmid)
            drained += 1
        return drained
