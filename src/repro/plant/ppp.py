"""The Production Process Planner (PPP).

The PPP turns a *production order* (a creation request plus the plant
assigned identity) into a running VM (Figure 2): it searches the VM
Warehouse for a suitable golden machine using the Section 3.2 matching
criterion, asks the production line to clone it, then walks the
residual configuration DAG in topological order executing each action
with its error-node semantics:

* ``FAIL`` — abort production, collect the partial clone, raise;
* ``RETRY`` — re-run the action up to its retry budget;
* ``IGNORE`` — record the failure in the classad and continue;
* ``HANDLER`` — run the explicit error-handling sub-graph; if the
  handler completes, production continues, otherwise it aborts.

All orchestration methods are simulation-kernel process generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Mapping, Optional, Tuple

from repro.core.actions import (
    Action,
    ActionResult,
    ActionStatus,
    ErrorPolicy,
)
from repro.core.dag import ConfigDAG
from repro.core.errors import ConfigurationError, PlantError, ReproError
from repro.core.matching import MatchResult
from repro.core.spec import CreateRequest
from repro.plant.infosys import VMInformationSystem
from repro.plant.production import (
    CloneMode,
    ProductionLine,
    VirtualMachine,
    VMStatus,
)
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.sim.kernel import Environment, Interrupt
from repro.sim.trace import trace

__all__ = ["ProductionOrder", "ProductionProcessPlanner"]


@dataclass
class ProductionOrder:
    """One unit of work for the PPP."""

    vmid: str
    request: CreateRequest
    clone_mode: CloneMode = CloneMode.LINK
    #: Request-scoped values available to configuration scripts
    #: (client id, VNET-assigned IP, ...); the PPP adds ``vmid``.
    context: Dict[str, str] = field(default_factory=dict)


class ProductionProcessPlanner:
    """Plans and drives VM production for one plant."""

    def __init__(
        self,
        env: Environment,
        warehouse: VMWarehouse,
        infosys: VMInformationSystem,
        lines: Mapping[str, ProductionLine],
    ):
        if not lines:
            raise ValueError("at least one production line is required")
        self.env = env
        self.warehouse = warehouse
        self.infosys = infosys
        self.lines = dict(lines)
        # Lines are fixed at construction; pre-sort the untyped-request
        # candidate order once instead of per plan() call.
        self._sorted_vm_types = sorted(self.lines)
        #: In-flight productions: vmid → (vm, line), registered for
        #: the clone+configure window so an abort can find and release
        #: partial state (:meth:`abort_inflight`).
        self._inflight: Dict[str, Tuple[VirtualMachine, ProductionLine]] = {}

    # -- planning ---------------------------------------------------------
    def plan(
        self, order: ProductionOrder
    ) -> Tuple[GoldenImage, MatchResult, ProductionLine]:
        """Select the golden machine and production line for an order.

        Preference: the requested technology if given, otherwise every
        line is considered and the deepest matching prefix wins
        (ties broken by line name for determinism).

        Selection goes through the warehouse's match index and
        per-request memo, so the plants of a site bidding on one
        request evaluate the Section 3.2 criterion once.
        """
        request = order.request
        vm_types = (
            [request.vm_type]
            if request.vm_type is not None
            else self._sorted_vm_types
        )
        best: Optional[Tuple[int, str, GoldenImage, MatchResult, ProductionLine]]
        best = None
        for vm_type in vm_types:
            line = self.lines.get(vm_type)
            if line is None or not line.can_host(request):
                continue
            image, result = self.warehouse.select(
                request.dag,
                request.hardware,
                request.software.os,
                vm_type,
            )
            if image is None or result is None:
                continue
            key = (-result.depth, vm_type)
            if best is None or key < (best[0], best[1]):
                best = (key[0], key[1], image, result, line)
        if best is None:
            raise PlantError(
                f"no golden machine matches request for "
                f"{request.software.os!r} / {request.hardware.memory_mb}MB"
            )
        return best[2], best[3], best[4]

    # -- production ---------------------------------------------------------
    def produce(self, order: ProductionOrder) -> Generator:
        """Clone and configure a VM; returns the VirtualMachine.

        Raises :class:`PlantError` on clone failure and
        :class:`ConfigurationError` when a FAIL/HANDLER action aborts
        production.  In both cases the partial clone is collected.
        The production is registered in-flight for its whole duration
        so :meth:`abort_inflight` can release partial state.
        """
        image, match, line = self.plan(order)
        request = order.request
        vm = VirtualMachine(
            vmid=order.vmid,
            image=image,
            request=request,
            vm_type=line.vm_type,
        )
        context = dict(order.context)
        context.setdefault("vmid", order.vmid)
        context.setdefault("client", request.client_id)
        context.setdefault("domain", request.network.domain)

        ad = vm.classad
        ad["vmid"] = order.vmid
        ad["client"] = request.client_id
        ad["image_id"] = image.image_id
        ad["vm_type"] = line.vm_type
        ad["os"] = request.software.os
        ad["memory_mb"] = request.hardware.memory_mb
        ad["created_at"] = self.env.now
        ad["clone_mode"] = order.clone_mode.value

        self._inflight[order.vmid] = (vm, line)
        try:
            yield from self._produce_phases(
                order, vm, image, match, line, context
            )
        finally:
            self._inflight.pop(order.vmid, None)
        return vm

    def abort_inflight(self, vmid: str):
        """Release an in-flight production's partial state.

        Returns ``(vm, line)`` when a production was actually aborted
        (the caller decides what else to unwind), else ``(None,
        None)``.  Synchronous: marks the VM failed and releases any
        line-held memory exactly once.
        """
        entry = self._inflight.pop(vmid, None)
        if entry is None:
            return None, None
        vm, line = entry
        vm.status = VMStatus.FAILED
        line.abort(vm)
        return vm, line

    def _produce_phases(
        self,
        order: ProductionOrder,
        vm: VirtualMachine,
        image: GoldenImage,
        match: MatchResult,
        line: ProductionLine,
        context: Dict[str, str],
    ) -> Generator:
        request = order.request
        ad = vm.classad
        # Phase 4 of Figure 3: clone the cached sub-graph.
        trace(
            self.env, "ppp", "clone-start",
            vmid=order.vmid, image=image.image_id,
            cached=len(match.satisfied), residual=len(match.residual),
        )
        clone_start = self.env.now
        try:
            yield from line.clone(vm, order.clone_mode)
        except (ReproError, Interrupt):
            # The line's clone wrapper already released host memory.
            vm.status = VMStatus.FAILED
            raise
        ad["clone_time"] = self.env.now - clone_start
        trace(
            self.env, "ppp", "clone-done",
            vmid=order.vmid, seconds=self.env.now - clone_start,
        )

        for name in match.satisfied:
            vm.record(
                ActionResult(action=name, status=ActionStatus.CACHED)
            )
        vm.performed_actions.extend(image.performed)

        # Phase 5: execute the residual sub-graph.
        vm.status = VMStatus.CONFIGURING
        config_start = self.env.now
        dag = request.dag
        try:
            yield from self.run_actions(
                vm, line, dag, list(match.residual), context
            )
        except ConfigurationError:
            vm.status = VMStatus.FAILED
            yield from line.collect(vm)
            raise
        except (ReproError, Interrupt):
            # Crash or deadline-interrupt mid-configuration: the clone
            # is running and holds host memory, but a graceful collect
            # is impossible (host down / caller gone) — release
            # synchronously.
            vm.status = VMStatus.FAILED
            line.abort(vm)
            raise
        ad["config_time"] = self.env.now - config_start
        ad["total_time"] = self.env.now - clone_start
        ad["actions_cached"] = len(match.satisfied)
        ad["actions_executed"] = len(match.residual)

        vm.status = VMStatus.RUNNING
        ad["status"] = vm.status.value
        if request.lease_s is not None:
            ad["lease_expires_at"] = self.env.now + request.lease_s
        self.infosys.store(vm)
        trace(
            self.env, "ppp", "vm-running",
            vmid=order.vmid, total=self.env.now - clone_start,
        )
        return vm

    def run_actions(
        self,
        vm: VirtualMachine,
        line: ProductionLine,
        dag: ConfigDAG,
        names: List[str],
        context: Dict[str, str],
    ) -> Generator:
        """Execute ``names`` (already topologically ordered)."""
        for name in names:
            action = dag.action(name)
            result = yield from self._run_one(vm, line, action, context)
            if result.ok:
                vm.record(result)
                vm.performed_actions.append(action)
                continue
            policy = action.on_error
            if policy is ErrorPolicy.IGNORE:
                vm.record(result)
                continue
            if policy is ErrorPolicy.HANDLER:
                handler = dag.handler_for(name)
                if handler is None:
                    vm.record(result)
                    raise ConfigurationError(
                        name,
                        "failed with HANDLER policy but no handler attached",
                        vm.results,
                    )
                vm.record(result)
                yield from self._run_handler(vm, line, handler, name, context)
                continue
            # FAIL (and RETRY that exhausted its budget inside _run_one).
            vm.record(result)
            raise ConfigurationError(
                name, result.message or "action failed", vm.results
            )

    def _run_one(
        self,
        vm: VirtualMachine,
        line: ProductionLine,
        action: Action,
        context: Dict[str, str],
    ) -> Generator:
        """One action with its retry budget applied."""
        budget = action.retries if action.on_error is ErrorPolicy.RETRY else 0
        attempts = 0
        while True:
            attempts += 1
            result: ActionResult = yield from line.execute_action(
                vm, action, context
            )
            if result.ok or attempts > budget:
                if attempts > 1:
                    result = ActionResult(
                        action=result.action,
                        status=result.status,
                        outputs=result.outputs,
                        stdout=result.stdout,
                        duration=result.duration,
                        attempts=attempts,
                        message=result.message,
                    )
                return result

    def _run_handler(
        self,
        vm: VirtualMachine,
        line: ProductionLine,
        handler: ConfigDAG,
        failed_action: str,
        context: Dict[str, str],
    ) -> Generator:
        """Run an explicit error-handling sub-graph.

        Handler actions execute with ``failed_action`` added to the
        context; a failure inside the handler aborts production.
        """
        handler_context = dict(context)
        handler_context["failed_action"] = failed_action
        for name in handler.topological_sort():
            action = handler.action(name)
            result = yield from self._run_one(
                vm, line, action, handler_context
            )
            vm.record(result)
            if result.ok:
                vm.performed_actions.append(action)
            if not result.ok and action.on_error is not ErrorPolicy.IGNORE:
                raise ConfigurationError(
                    name,
                    f"error handler for {failed_action!r} failed",
                    vm.results,
                )
