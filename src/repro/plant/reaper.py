"""Lease enforcement: automatic collection of expired VMs.

Web/Grid service frameworks pair dynamically created resources with
*lifetime management* (the paper defers it to the hosting framework;
we provide the plant-side half).  A creation request may carry a
lease (:attr:`~repro.core.spec.CreateRequest.lease_s`); the plant
stamps ``lease_expires_at`` into the VM's classad, and the
:class:`LeaseReaper` daemon sweeps the information system, collecting
any VM whose lease has lapsed — exactly as if the client had called
destroy.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.errors import ReproError
from repro.plant.production import VMStatus
from repro.plant.vmplant import VMPlant
from repro.sim.kernel import Environment, Interrupt, Process
from repro.sim.trace import trace

__all__ = ["LeaseReaper"]


class LeaseReaper:
    """Periodic lease sweep for one plant.

    When given a back-reference to the shop (``shop``), the reaper
    also collects *orphans*: VMs still RUNNING at the plant whose vmid
    the shop no longer routes — the residue of a shop-side abort or a
    crash-recovery race.  Orphans are only collected once they are
    older than ``orphan_grace_s``, so in-flight creations are never
    mistaken for garbage.
    """

    def __init__(
        self,
        env: Environment,
        plant: VMPlant,
        period: float = 10.0,
        shop=None,
        orphan_grace_s: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if orphan_grace_s is not None and orphan_grace_s < 0:
            raise ValueError("orphan_grace_s must be non-negative")
        self.env = env
        self.plant = plant
        self.period = period
        self.shop = shop
        self.orphan_grace_s = orphan_grace_s
        #: vmids collected because their lease lapsed.
        self.reaped: List[str] = []
        #: vmids collected because the shop lost track of them.
        self.orphans_collected: List[str] = []
        #: vmids whose destroy raised; the sweep keeps going.
        self.failed: List[str] = []
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        """Launch the reaper daemon."""
        if self._proc is not None and self._proc.is_alive:
            return self._proc
        self._proc = self.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        """Terminate the daemon."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("reaper stopped")

    def expired_vmids(self) -> List[str]:
        """Active VMs whose lease has lapsed."""
        now = self.env.now
        out: List[str] = []
        for vm in self.plant.infosys.active():
            if vm.status is not VMStatus.RUNNING:
                continue
            expires = vm.classad.get("lease_expires_at")
            if isinstance(expires, (int, float)) and now >= expires:
                out.append(vm.vmid)
        return out

    def orphan_vmids(self) -> List[str]:
        """RUNNING VMs the shop no longer routes (past the grace window)."""
        if self.shop is None or self.orphan_grace_s is None:
            return []
        now = self.env.now
        prefix = f"{self.shop.name}-vm-"
        routed = set(self.shop.active_vmids())
        out: List[str] = []
        for vm in self.plant.infosys.active():
            if vm.status is not VMStatus.RUNNING:
                continue
            if not vm.vmid.startswith(prefix) or vm.vmid in routed:
                continue
            created = vm.classad.get("created_at")
            age = now - float(created) if isinstance(created, (int, float)) else 0.0
            if age >= self.orphan_grace_s:
                out.append(vm.vmid)
        return out

    def sweep(self) -> Generator:
        """Collect every expired VM; returns how many were reaped.

        A destroy that raises is recorded in :attr:`failed` and the
        sweep continues — one broken VM must not leave every later
        lease unenforced.
        """
        count = 0
        for vmid in self.expired_vmids():
            try:
                yield from self.plant.destroy(vmid)
            except ReproError as exc:
                self.failed.append(vmid)
                trace(
                    self.env, "reaper", "destroy-failed",
                    vmid=vmid, plant=self.plant.name,
                    error=type(exc).__name__,
                )
                continue
            self.reaped.append(vmid)
            count += 1
            trace(
                self.env, "reaper", "lease-expired",
                vmid=vmid, plant=self.plant.name,
            )
        for vmid in self.orphan_vmids():
            try:
                yield from self.plant.destroy(vmid)
            except ReproError as exc:
                self.failed.append(vmid)
                trace(
                    self.env, "reaper", "destroy-failed",
                    vmid=vmid, plant=self.plant.name,
                    error=type(exc).__name__,
                )
                continue
            self.orphans_collected.append(vmid)
            count += 1
            trace(
                self.env, "reaper", "orphan-collected",
                vmid=vmid, plant=self.plant.name,
            )
        return count

    def _run(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(self.period)
                yield from self.sweep()
        except Interrupt:
            return
