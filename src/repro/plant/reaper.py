"""Lease enforcement: automatic collection of expired VMs.

Web/Grid service frameworks pair dynamically created resources with
*lifetime management* (the paper defers it to the hosting framework;
we provide the plant-side half).  A creation request may carry a
lease (:attr:`~repro.core.spec.CreateRequest.lease_s`); the plant
stamps ``lease_expires_at`` into the VM's classad, and the
:class:`LeaseReaper` daemon sweeps the information system, collecting
any VM whose lease has lapsed — exactly as if the client had called
destroy.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.plant.production import VMStatus
from repro.plant.vmplant import VMPlant
from repro.sim.kernel import Environment, Interrupt, Process
from repro.sim.trace import trace

__all__ = ["LeaseReaper"]


class LeaseReaper:
    """Periodic lease sweep for one plant."""

    def __init__(
        self,
        env: Environment,
        plant: VMPlant,
        period: float = 10.0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.plant = plant
        self.period = period
        #: vmids collected because their lease lapsed.
        self.reaped: List[str] = []
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        """Launch the reaper daemon."""
        if self._proc is not None and self._proc.is_alive:
            return self._proc
        self._proc = self.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        """Terminate the daemon."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("reaper stopped")

    def expired_vmids(self) -> List[str]:
        """Active VMs whose lease has lapsed."""
        now = self.env.now
        out: List[str] = []
        for vm in self.plant.infosys.active():
            if vm.status is not VMStatus.RUNNING:
                continue
            expires = vm.classad.get("lease_expires_at")
            if isinstance(expires, (int, float)) and now >= expires:
                out.append(vm.vmid)
        return out

    def sweep(self) -> Generator:
        """Collect every expired VM; returns how many were reaped."""
        count = 0
        for vmid in self.expired_vmids():
            yield from self.plant.destroy(vmid)
            self.reaped.append(vmid)
            count += 1
            trace(
                self.env, "reaper", "lease-expired",
                vmid=vmid, plant=self.plant.name,
            )
        return count

    def _run(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(self.period)
                yield from self.sweep()
        except Interrupt:
            return
