"""Extension experiment: bidding scalability and VMBroker trees.

The paper claims "composition of services to support large number of
VM plants" (Section 6).  This experiment measures the message cost of
plant selection as the site grows:

* **flat** — the shop collects a bid from every plant per creation:
  shop-side message count grows linearly with the plant count;
* **brokered** — plants are grouped behind VMBrokers (~√N groups);
  the shop only talks to the brokers, so its message count grows with
  the number of groups while placement quality is preserved (each
  broker answers with its best plant's bid).

A second variant, :func:`run_matching_scalability`, grows the *golden
warehouse* instead of the plant count: the site's eight plants bid on
identical creations while the warehouse is padded with distinct
(unmatchable) image profiles.  With the indexed + memoized matching
path the per-site DAG-test work stays flat — every plant after the
first hits the shared memo, and the index tests each distinct profile
at most once per warehouse generation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from repro.core.actions import Action
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage
from repro.shop.broker import VMBroker
from repro.sim.cluster import build_testbed
from repro.workloads.requests import (
    MANDRAKE_OS,
    experiment_request,
    install_os_action,
)

__all__ = [
    "ScalabilityResult",
    "run_scalability",
    "MatchingScalabilityResult",
    "run_matching_scalability",
]


@dataclass
class ScalabilityResult:
    """Flat vs. brokered bidding across site sizes."""

    #: site size → (flat shop calls/create, brokered shop calls/create)
    calls_per_create: Dict[int, Tuple[float, float]]
    #: site size → (flat, brokered) mean creation latency.
    latency: Dict[int, Tuple[float, float]]
    requests: int

    def render(self) -> str:
        lines = [
            "Extension: bidding scalability — flat vs. brokered "
            f"({self.requests} x 32 MB creations per point)",
            "",
            f"{'plants':>8} {'flat msgs/create':>17} "
            f"{'brokered msgs/create':>21} {'flat lat (s)':>13} "
            f"{'brokered lat (s)':>17}",
            "-" * 80,
        ]
        for n in sorted(self.calls_per_create):
            flat_calls, brok_calls = self.calls_per_create[n]
            flat_lat, brok_lat = self.latency[n]
            lines.append(
                f"{n:>8d} {flat_calls:>17.1f} {brok_calls:>21.1f} "
                f"{flat_lat:>13.1f} {brok_lat:>17.1f}"
            )
        lines.append("-" * 80)
        lines.append(
            "shop-side message cost grows ~linearly when flat, ~sqrt(N) "
            "when brokered"
        )
        return "\n".join(lines)


def _run_one(
    seed: int, n_plants: int, requests: int, brokered: bool
) -> Tuple[float, float]:
    bed = build_testbed(seed=seed, n_plants=n_plants)
    shop = bed.shop
    if brokered:
        group = max(2, int(math.sqrt(n_plants)))
        brokers: List[VMBroker] = []
        for i in range(0, n_plants, group):
            brokers.append(
                VMBroker(
                    f"broker{i // group}",
                    bed.plants[i : i + group],
                )
            )
        shop.bidders = list(brokers)

    latencies: List[float] = []
    calls_before = shop.transport.calls

    def client() -> Generator:
        for _ in range(requests):
            start = bed.env.now
            yield from shop.create(experiment_request(32))
            latencies.append(bed.env.now - start)

    bed.run(client())
    calls = (shop.transport.calls - calls_before) / requests
    return calls, float(sum(latencies) / len(latencies))


@dataclass
class MatchingScalabilityResult:
    """Warehouse-size sweep of the indexed/memoized matching path."""

    #: extra filler images → per-run counters.
    points: Dict[int, Dict[str, float]]
    requests: int

    def render(self) -> str:
        lines = [
            "Extension: matching scalability — warehouse size vs. "
            f"matching work ({self.requests} x 32 MB creations per "
            "point, 8 plants bidding)",
            "",
            f"{'images':>8} {'selects':>9} {'memo hits':>10} "
            f"{'hit %':>7} {'profiles tested':>16} "
            f"{'selects/s':>11}",
            "-" * 68,
        ]
        for extra in sorted(self.points):
            p = self.points[extra]
            lines.append(
                f"{p['images']:>8.0f} {p['selects']:>9.0f} "
                f"{p['memo_hits']:>10.0f} {p['hit_pct']:>7.1f} "
                f"{p['profiles_tested']:>16.0f} "
                f"{p['selects_per_sec']:>11.0f}"
            )
        lines.append("-" * 68)
        lines.append(
            "every plant after the first answers from the shared memo; "
            "the index tests each distinct profile at most once per "
            "warehouse generation"
        )
        return "\n".join(lines)


def _matching_fillers(n: int) -> List[GoldenImage]:
    """Distinct-profile images in the hot bucket, none matchable.

    Each filler shares the query's bucket (vm_type/os/isa/memory) so
    the index cannot discard it wholesale, but carries a site-local
    package action foreign to the request DAG, so the subset test
    rejects it — a distinct profile the index must test exactly once.
    """
    base = install_os_action(MANDRAKE_OS)
    return [
        GoldenImage(
            image_id=f"site-{i:05d}",
            vm_type="vmware",
            os=MANDRAKE_OS,
            hardware=HardwareSpec(memory_mb=32),
            performed=(
                base,
                Action(f"site-pkg-{i}", command=f"rpm -i pkg{i}.rpm"),
            ),
            memory_state_mb=32.0,
        )
        for i in range(n)
    ]


def _run_matching_one(
    seed: int, extra: int, requests: int
) -> Dict[str, float]:
    bed = build_testbed(seed=seed, extra_images=_matching_fillers(extra))

    def client() -> Generator:
        for _ in range(requests):
            yield from bed.shop.create(experiment_request(32))

    t0 = time.perf_counter()
    bed.run(client())
    wall = time.perf_counter() - t0
    stats = bed.warehouse.match_stats
    selects = stats["queries"]
    return {
        "images": float(len(bed.warehouse)),
        "selects": float(selects),
        "memo_hits": float(stats["memo_hits"]),
        "hit_pct": 100.0 * stats["memo_hits"] / selects if selects else 0.0,
        "profiles_tested": float(
            bed.warehouse.index_stats["profiles_tested"]
        ),
        "selects_per_sec": selects / wall if wall > 0 else float("inf"),
    }


def run_matching_scalability(
    seed: int = 2004,
    sizes: Tuple[int, ...] = (10, 100, 1000),
    requests: int = 6,
) -> MatchingScalabilityResult:
    """Sweep warehouse sizes; counters are deterministic per seed."""
    points = {
        extra: _run_matching_one(seed, extra, requests)
        for extra in sizes
    }
    return MatchingScalabilityResult(points=points, requests=requests)


def run_scalability(
    seed: int = 2004,
    sizes: Tuple[int, ...] = (4, 16, 32),
    requests: int = 8,
) -> ScalabilityResult:
    """Sweep site sizes for both topologies."""
    calls_per_create: Dict[int, Tuple[float, float]] = {}
    latency: Dict[int, Tuple[float, float]] = {}
    for n in sizes:
        flat_calls, flat_lat = _run_one(seed, n, requests, False)
        brok_calls, brok_lat = _run_one(seed, n, requests, True)
        calls_per_create[n] = (flat_calls, brok_calls)
        latency[n] = (flat_lat, brok_lat)
    return ScalabilityResult(
        calls_per_create=calls_per_create,
        latency=latency,
        requests=requests,
    )
