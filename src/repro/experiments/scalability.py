"""Extension experiment: bidding scalability and VMBroker trees.

The paper claims "composition of services to support large number of
VM plants" (Section 6).  This experiment measures the message cost of
plant selection as the site grows:

* **flat** — the shop collects a bid from every plant per creation:
  shop-side message count grows linearly with the plant count;
* **brokered** — plants are grouped behind VMBrokers (~√N groups);
  the shop only talks to the brokers, so its message count grows with
  the number of groups while placement quality is preserved (each
  broker answers with its best plant's bid).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from repro.shop.broker import VMBroker
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request

__all__ = ["ScalabilityResult", "run_scalability"]


@dataclass
class ScalabilityResult:
    """Flat vs. brokered bidding across site sizes."""

    #: site size → (flat shop calls/create, brokered shop calls/create)
    calls_per_create: Dict[int, Tuple[float, float]]
    #: site size → (flat, brokered) mean creation latency.
    latency: Dict[int, Tuple[float, float]]
    requests: int

    def render(self) -> str:
        lines = [
            "Extension: bidding scalability — flat vs. brokered "
            f"({self.requests} x 32 MB creations per point)",
            "",
            f"{'plants':>8} {'flat msgs/create':>17} "
            f"{'brokered msgs/create':>21} {'flat lat (s)':>13} "
            f"{'brokered lat (s)':>17}",
            "-" * 80,
        ]
        for n in sorted(self.calls_per_create):
            flat_calls, brok_calls = self.calls_per_create[n]
            flat_lat, brok_lat = self.latency[n]
            lines.append(
                f"{n:>8d} {flat_calls:>17.1f} {brok_calls:>21.1f} "
                f"{flat_lat:>13.1f} {brok_lat:>17.1f}"
            )
        lines.append("-" * 80)
        lines.append(
            "shop-side message cost grows ~linearly when flat, ~sqrt(N) "
            "when brokered"
        )
        return "\n".join(lines)


def _run_one(
    seed: int, n_plants: int, requests: int, brokered: bool
) -> Tuple[float, float]:
    bed = build_testbed(seed=seed, n_plants=n_plants)
    shop = bed.shop
    if brokered:
        group = max(2, int(math.sqrt(n_plants)))
        brokers: List[VMBroker] = []
        for i in range(0, n_plants, group):
            brokers.append(
                VMBroker(
                    f"broker{i // group}",
                    bed.plants[i : i + group],
                )
            )
        shop.bidders = list(brokers)

    latencies: List[float] = []
    calls_before = shop.transport.calls

    def client() -> Generator:
        for _ in range(requests):
            start = bed.env.now
            yield from shop.create(experiment_request(32))
            latencies.append(bed.env.now - start)

    bed.run(client())
    calls = (shop.transport.calls - calls_before) / requests
    return calls, float(sum(latencies) / len(latencies))


def run_scalability(
    seed: int = 2004,
    sizes: Tuple[int, ...] = (4, 16, 32),
    requests: int = 8,
) -> ScalabilityResult:
    """Sweep site sizes for both topologies."""
    calls_per_create: Dict[int, Tuple[float, float]] = {}
    latency: Dict[int, Tuple[float, float]] = {}
    for n in sizes:
        flat_calls, flat_lat = _run_one(seed, n, requests, False)
        brok_calls, brok_lat = _run_one(seed, n, requests, True)
        calls_per_create[n] = (flat_calls, brok_calls)
        latency[n] = (flat_lat, brok_lat)
    return ScalabilityResult(
        calls_per_create=calls_per_create,
        latency=latency,
        requests=requests,
    )
