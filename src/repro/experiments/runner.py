"""Shared experiment runner: sequential creation streams.

Section 4.2's methodology: a client issues VM creation requests *in
sequence* through VMShop — 128 requests for the 32 MB and 64 MB golden
machines, 40 for 256 MB — and the end-to-end latency (client request →
VMShop response) is recorded per successful creation.  Cloning times
come from the production lines' clone records.

The paper reports 121/128, 124/128 and 40/40 successful creations;
the per-run ``failure_prob`` below injects clone (resume) failures at
rates chosen to land in that regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.classad import ClassAd
from repro.core.errors import ReproError
from repro.cost.models import CostModel
from repro.plant.production import CloneMode
from repro.sim.cluster import Testbed, build_testbed
from repro.sim.hypervisor import CloneRecord
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.workloads.requests import request_stream

__all__ = [
    "CreationSample",
    "ExperimentRun",
    "run_creation_experiment",
    "run_creation_suite",
    "PAPER_RUNS",
]

#: (request count, injected clone-failure probability) per golden
#: machine size — calibrated to the paper's 121/128, 124/128, 40/40
#: success counts.
PAPER_RUNS: Dict[int, tuple] = {
    32: (128, 0.05),
    64: (128, 0.02),
    256: (40, 0.0),
}


@dataclass(frozen=True)
class CreationSample:
    """One client-observed creation attempt."""

    index: int
    memory_mb: int
    ok: bool
    #: Client request → shop response (seconds); NaN when failed.
    latency: float
    vmid: str = ""
    plant: str = ""
    error: str = ""


@dataclass
class ExperimentRun:
    """Results of one sequential creation stream."""

    memory_mb: int
    vm_type: str
    samples: List[CreationSample] = field(default_factory=list)
    classads: List[ClassAd] = field(default_factory=list)
    testbed: Optional[Testbed] = None
    #: Materialized clone records for detached (testbed-free) runs, as
    #: produced by :meth:`detach` — e.g. after crossing a process
    #: boundary in the parallel runner or a round-trip through the
    #: on-disk result cache.
    frozen_clone_records: Optional[List[CloneRecord]] = None

    @property
    def successes(self) -> List[CreationSample]:
        """Samples whose creation completed."""
        return [s for s in self.samples if s.ok]

    @property
    def failures(self) -> List[CreationSample]:
        """Samples whose creation failed."""
        return [s for s in self.samples if not s.ok]

    @property
    def creation_latencies(self) -> List[float]:
        """End-to-end latencies of successful creations, in order."""
        return [s.latency for s in self.successes]

    def clone_records(self) -> List[CloneRecord]:
        """Clone records of successful creations, in request order."""
        if self.frozen_clone_records is not None:
            return list(self.frozen_clone_records)
        good = {s.vmid for s in self.successes}
        return [
            r
            for r in (self.testbed.clone_records() if self.testbed else [])
            if r.vmid in good
        ]

    @property
    def clone_times(self) -> List[float]:
        """Cloning latencies (PPP clone request → resume complete)."""
        return [r.total_time for r in self.clone_records()]

    def detach(self) -> "ExperimentRun":
        """A picklable copy with clone records materialized.

        The live testbed (environment, plants, generators) cannot
        cross process boundaries or be written to the result cache;
        everything the analysis layer reads — samples, classads, clone
        records — is preserved bit-for-bit.
        """
        return ExperimentRun(
            memory_mb=self.memory_mb,
            vm_type=self.vm_type,
            samples=list(self.samples),
            classads=list(self.classads),
            testbed=None,
            frozen_clone_records=self.clone_records(),
        )


def run_creation_experiment(
    memory_mb: int,
    count: int,
    seed: int = 2004,
    failure_prob: float = 0.0,
    vm_type: str = "vmware",
    latency: LatencyModel = DEFAULT_LATENCY,
    cost_model: Optional[CostModel] = None,
    clone_mode: CloneMode = CloneMode.LINK,
    n_plants: int = 8,
    domains: Sequence[str] = ("acis.ufl.edu",),
    testbed: Optional[Testbed] = None,
) -> ExperimentRun:
    """Run one sequential creation stream and harvest the results."""
    bed = testbed or build_testbed(
        seed=seed,
        n_plants=n_plants,
        vm_types=(vm_type,),
        latency=latency,
        cost_model=cost_model,
        clone_failure_prob=failure_prob,
    )
    run = ExperimentRun(memory_mb=memory_mb, vm_type=vm_type, testbed=bed)
    requests = request_stream(
        memory_mb, count, vm_type=vm_type, domains=domains
    )

    def client() -> Generator:
        for index, request in enumerate(requests):
            start = bed.env.now
            try:
                ad = yield from bed.shop.create(request, clone_mode)
            except ReproError as exc:
                run.samples.append(
                    CreationSample(
                        index=index,
                        memory_mb=memory_mb,
                        ok=False,
                        latency=float("nan"),
                        error=str(exc),
                    )
                )
                continue
            run.samples.append(
                CreationSample(
                    index=index,
                    memory_mb=memory_mb,
                    ok=True,
                    latency=bed.env.now - start,
                    vmid=str(ad["vmid"]),
                    plant=str(ad["plant"]),
                )
            )
            run.classads.append(ad)

    bed.run(client())
    return run


def run_creation_suite(
    seed: int = 2004,
    runs: Optional[Dict[int, tuple]] = None,
    latency: LatencyModel = DEFAULT_LATENCY,
    *,
    n_plants: int = 8,
    vm_type: str = "vmware",
    clone_mode: CloneMode = CloneMode.LINK,
    cost_model: Optional[CostModel] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    cache: Optional[object] = None,
) -> Dict[int, ExperimentRun]:
    """The paper's three creation experiments (32/64/256 MB).

    Every run owns an independent seeded testbed, so the suite is
    embarrassingly parallel: with ``parallel=True`` the runs fan out
    across a process pool (see :mod:`repro.experiments.parallel`) and
    are merged back in plan order — results are bit-identical to
    sequential execution.  Passing a :class:`~repro.experiments.cache.
    ResultCache` as ``cache`` memoizes each run on disk keyed by
    (experiment id, parameters, seed, source digest).
    """
    from repro.experiments.parallel import Job, run_jobs

    plan = runs or PAPER_RUNS
    results: Dict[int, ExperimentRun] = {}
    pending: List[tuple] = []
    for memory, (count, failure_prob) in plan.items():
        kwargs = dict(
            memory_mb=memory,
            count=count,
            seed=seed + memory,  # independent testbed per run
            failure_prob=failure_prob,
            vm_type=vm_type,
            latency=latency,
            cost_model=cost_model,
            clone_mode=clone_mode,
            n_plants=n_plants,
        )
        if cache is not None:
            hit = cache.get("creation", kwargs)
            if hit is not None:
                results[memory] = hit
                continue
        pending.append((memory, kwargs))

    if pending:
        jobs = [
            Job(key=memory, fn=run_creation_experiment, kwargs=kwargs)
            for memory, kwargs in pending
        ]
        fresh = run_jobs(
            jobs,
            mode="process" if parallel else "serial",
            max_workers=max_workers,
        )
        for memory, kwargs in pending:
            run = fresh[memory]
            if cache is not None:
                cache.put("creation", kwargs, run)
            results[memory] = run

    # Deterministic merge: plan order, independent of completion order.
    return {memory: results[memory] for memory in plan}
