"""Chaos experiment: the recovery-policy ladder under injected faults.

The paper argues (Section 3.1) that decentralized plants limit the
blast radius of node failures but never measures it.  This experiment
does: a Poisson request stream runs against the simulated site while a
deterministic :class:`~repro.faults.plan.FaultPlan` crashes hosts,
takes the warehouse path down and hangs guest daemons — and the same
plan is replayed against each rung of the shop-side recovery ladder:

* ``surface``  — failures surface to the client (the seed behaviour);
* ``retry``    — the shop falls through to the next-best bidder;
* ``deadline`` — plus per-create/bid deadlines and backoff re-bids;
* ``breaker``  — plus per-plant circuit-breaker quarantine.

Every policy faces bit-identical arrivals (one named stream) and a
bit-identical fault schedule (the plan is materialized once per sweep
point), so availability differences are attributable to policy alone.
Each run ends with a leak audit: host memory, line admissions,
information-system entries and network leases must all drain to zero.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError
from repro.faults.audit import leak_report as _leak_report
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import (
    CIRCUIT_BREAKER,
    DEADLINE_BACKOFF,
    RecoveryPolicy,
)
from repro.sim.cluster import build_testbed
from repro.workloads.requests import poisson_arrivals, request_stream

__all__ = [
    "POLICY_LADDER",
    "ChaosPoint",
    "ChaosResult",
    "run_chaos",
]

#: The recovery ladder, weakest first: (name, retry_other_plants,
#: shop policy).  Availability must be non-decreasing down the list.
POLICY_LADDER: Tuple[Tuple[str, bool, RecoveryPolicy], ...] = (
    ("surface", False, RecoveryPolicy()),
    ("retry", True, RecoveryPolicy()),
    ("deadline", True, DEADLINE_BACKOFF),
    ("breaker", True, CIRCUIT_BREAKER),
)


@dataclass(frozen=True)
class ChaosPoint:
    """One (mtbf, policy) measurement."""

    policy: str
    mtbf_s: float
    requests: int
    ok: int
    failed: int
    #: Fraction of requests that got a VM.
    availability: float
    #: Successful creates per simulated second.
    goodput_per_s: float
    mean_latency_s: float
    makespan_s: float
    faults_applied: int
    faults_skipped: int
    #: Mean injected fault window (None = no fault landed).
    measured_mttr_s: Optional[float]
    quarantines: int
    #: Residual resources at drain; all zero on a clean run.
    leaks: Dict[str, float]
    #: SHA-256 over per-request outcomes (replay verification).
    fingerprint: str

    @property
    def leaked(self) -> bool:
        return any(v != 0 for v in self.leaks.values())

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "mtbf_s": self.mtbf_s,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "availability": self.availability,
            "goodput_per_s": self.goodput_per_s,
            "mean_latency_s": self.mean_latency_s,
            "makespan_s": self.makespan_s,
            "faults_applied": self.faults_applied,
            "faults_skipped": self.faults_skipped,
            "measured_mttr_s": self.measured_mttr_s,
            "quarantines": self.quarantines,
            "leaks": dict(self.leaks),
            "fingerprint": self.fingerprint,
        }


@dataclass
class ChaosResult:
    """Full sweep: MTBF point → ladder of policy measurements."""

    seed: int
    memory_mb: int
    requests: int
    rate_per_s: float
    mttr_s: float
    n_plants: int
    policies: Tuple[str, ...]
    points: Dict[float, List[ChaosPoint]] = field(default_factory=dict)
    #: Recorded fault schedule per MTBF point (the replay artifact).
    plans: Dict[float, List[dict]] = field(default_factory=dict)
    #: Tracer ring size attached to each run (None = no tracer).
    trace_capacity: Optional[int] = None
    #: Trace events dropped by bounded tracers, over all points.
    trace_dropped: int = 0

    def point(self, mtbf_s: float, policy: str) -> ChaosPoint:
        for p in self.points[mtbf_s]:
            if p.policy == policy:
                return p
        raise KeyError(f"no point for {policy!r} at MTBF {mtbf_s}")

    def availability_ladder(self, mtbf_s: float) -> List[float]:
        """Availabilities in ladder order for one MTBF point."""
        return [
            self.point(mtbf_s, policy).availability
            for policy in self.policies
        ]

    def plan_signature(self, mtbf_s: float) -> str:
        return FaultPlan.from_records(self.plans[mtbf_s]).signature()

    def to_records(self) -> dict:
        """JSON-ready report (``vmplants chaos --report``)."""
        return {
            "seed": self.seed,
            "memory_mb": self.memory_mb,
            "requests": self.requests,
            "rate_per_s": self.rate_per_s,
            "mttr_s": self.mttr_s,
            "n_plants": self.n_plants,
            "policies": list(self.policies),
            "points": [
                p.as_dict()
                for mtbf in sorted(self.points)
                for p in self.points[mtbf]
            ],
            "plans": {
                str(mtbf): {
                    "signature": self.plan_signature(mtbf),
                    "records": records,
                }
                for mtbf, records in self.plans.items()
            },
        }

    def render(self) -> str:
        lines = [
            "Extension: recovery-policy ladder under injected faults "
            f"({self.requests} x {self.memory_mb} MB VMs, "
            f"{self.n_plants} plants, {self.rate_per_s:g} req/s, "
            f"MTTR {self.mttr_s:.0f} s)",
            "",
            f"{'MTBF (s)':>9} {'policy':<10} {'ok':>4} {'avail':>7} "
            f"{'goodput/s':>10} {'mean lat':>9} {'faults':>7} "
            f"{'skip':>5} {'MTTR (s)':>9} {'quar':>5} {'leaks':>6}",
            "-" * 90,
        ]
        for mtbf in sorted(self.points):
            for p in self.points[mtbf]:
                mttr = (
                    f"{p.measured_mttr_s:>9.1f}"
                    if p.measured_mttr_s is not None
                    else f"{'-':>9}"
                )
                lines.append(
                    f"{mtbf:>9.0f} {p.policy:<10} {p.ok:>4d} "
                    f"{p.availability:>7.3f} {p.goodput_per_s:>10.4f} "
                    f"{p.mean_latency_s:>9.1f} {p.faults_applied:>7d} "
                    f"{p.faults_skipped:>5d} {mttr} {p.quarantines:>5d} "
                    f"{'LEAK' if p.leaked else 'none':>6}"
                )
        lines.append("-" * 90)
        for mtbf in sorted(self.points):
            ladder = self.availability_ladder(mtbf)
            arrow = " <= ".join(f"{a:.3f}" for a in ladder)
            mono = all(b >= a for a, b in zip(ladder, ladder[1:]))
            lines.append(
                f"MTBF {mtbf:.0f}s availability ladder "
                f"({' -> '.join(self.policies)}): {arrow}"
                f"{'' if mono else '  [NOT MONOTONE]'}"
            )
        if self.trace_capacity is not None:
            lines.append(
                f"tracer: bounded to {self.trace_capacity} events; "
                f"{self.trace_dropped} dropped"
                + (
                    " (traces cover run tails only)"
                    if self.trace_dropped
                    else ""
                )
            )
        return "\n".join(lines)


def _policy_table(
    policies: Sequence[str],
) -> List[Tuple[str, bool, RecoveryPolicy]]:
    by_name = {name: (name, retry, pol) for name, retry, pol in POLICY_LADDER}
    unknown = set(policies) - set(by_name)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    return [by_name[name] for name in policies]


def _fingerprint(outcomes: Sequence[Tuple[int, str, float]]) -> str:
    payload = ";".join(
        f"{idx}:{status}:{latency:.9f}" for idx, status, latency in outcomes
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _run_point(
    policy_name: str,
    retry_other_plants: bool,
    policy: RecoveryPolicy,
    plan: FaultPlan,
    seed: int,
    memory_mb: int,
    requests: int,
    rate: float,
    hold_s: float,
    n_plants: int,
    mtbf_s: float,
    trace_capacity: Optional[int] = None,
) -> Tuple[ChaosPoint, int]:
    bed = build_testbed(
        seed=seed,
        n_plants=n_plants,
        retry_other_plants=retry_other_plants,
        recovery=policy,
    )
    if trace_capacity is not None:
        from repro.sim.trace import Tracer

        bed.env.tracer = Tracer(capacity=trace_capacity)
    injector = FaultInjector(bed, plan)
    injector.start()
    stream = request_stream(memory_mb, requests)
    # One shared stream name: every policy sees identical arrivals.
    times = poisson_arrivals(
        bed.rng, rate, requests, stream=f"chaos/{rate}"
    )
    outcomes: List[Tuple[int, str, float]] = []
    latencies: List[float] = []
    failures = [0]

    def one(idx: int, at: float, request) -> Generator:
        yield bed.env.timeout(at)
        start = bed.env.now
        try:
            ad = yield from bed.shop.create(request)
        except ReproError:
            failures[0] += 1
            outcomes.append((idx, "fail", bed.env.now - start))
            return
        latencies.append(bed.env.now - start)
        outcomes.append((idx, "ok", bed.env.now - start))
        yield bed.env.timeout(hold_s)
        try:
            yield from bed.shop.destroy(str(ad["vmid"]))
        except ReproError:
            pass  # crash-killed underneath us; route already dropped

    def client() -> Generator:
        procs = [
            bed.env.process(one(idx, at, request))
            for idx, (at, request) in enumerate(zip(times, stream))
        ]
        yield bed.env.all_of(procs)

    start = bed.env.now
    bed.run(client())
    makespan = bed.env.now - start
    ok = len(latencies)
    sample = np.asarray(latencies, dtype=float)
    quarantines = sum(
        h.times_opened for h in bed.shop.health.values()
    )
    dropped = (
        bed.env.tracer.dropped if trace_capacity is not None else 0
    )
    point = ChaosPoint(
        policy=policy_name,
        mtbf_s=mtbf_s,
        requests=requests,
        ok=ok,
        failed=failures[0],
        availability=ok / requests if requests else 0.0,
        goodput_per_s=ok / makespan if makespan > 0 else 0.0,
        mean_latency_s=float(sample.mean()) if ok else float("nan"),
        makespan_s=makespan,
        faults_applied=sum(
            1 for _, phase, _, _ in injector.applied if phase == "inject"
        ),
        faults_skipped=injector.skipped,
        measured_mttr_s=injector.mean_time_to_recover(),
        quarantines=quarantines,
        leaks=_leak_report(bed),
        fingerprint=_fingerprint(sorted(outcomes)),
    )
    return point, dropped


def run_chaos(
    seed: int = 2004,
    memory_mb: int = 64,
    requests: int = 48,
    rate: float = 0.1,
    mtbf_sweep: Sequence[float] = (300.0, 900.0),
    mttr_s: float = 60.0,
    hold_s: float = 45.0,
    n_plants: int = 8,
    crash_plants: Optional[int] = None,
    warehouse_outages: bool = True,
    warehouse_mode: str = "stall",
    guest_hangs: bool = True,
    hang_s: float = 30.0,
    policies: Sequence[str] = tuple(name for name, _, _ in POLICY_LADDER),
    plans: Optional[Dict[float, List[dict]]] = None,
    trace_capacity: Optional[int] = None,
) -> ChaosResult:
    """Sweep fault pressure (MTBF) across the recovery-policy ladder.

    One :class:`FaultPlan` is materialized per MTBF point and replayed
    against every policy.  ``plans`` (mtbf → recorded events, the
    ``plans`` section of a saved report) bypasses generation entirely —
    the replay path: identical schedule, bit-identical outcome.
    ``trace_capacity`` attaches a bounded tracer to every run and
    reports dropped events (default: no tracer, as before).
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate <= 0:
        raise ValueError("rate must be positive")
    ladder = _policy_table(policies)
    if crash_plants is None:
        crash_plants = max(1, n_plants // 2)
    crash_plants = min(crash_plants, n_plants)
    # Generously past the last arrival so late faults still land
    # while VMs are held, but the plan stays finite.
    horizon_s = requests / rate + 6.0 * mttr_s

    result = ChaosResult(
        seed=seed,
        memory_mb=memory_mb,
        requests=requests,
        rate_per_s=rate,
        mttr_s=mttr_s,
        n_plants=n_plants,
        policies=tuple(policies),
        trace_capacity=trace_capacity,
    )
    for mtbf in mtbf_sweep:
        if plans is not None and mtbf in plans:
            plan = FaultPlan.from_records(plans[mtbf])
        else:
            from repro.sim.rng import RngHub

            hub = RngHub(seed)
            plan = FaultPlan.exponential(
                hub,
                horizon_s,
                crash_targets=[f"plant{i}" for i in range(crash_plants)],
                mtbf_s=mtbf,
                mttr_s=mttr_s,
                warehouse=warehouse_outages,
                warehouse_mode=warehouse_mode,
                hang_targets=(
                    [f"plant{i}" for i in range(crash_plants, n_plants)]
                    if guest_hangs
                    else ()
                ),
                hang_s=hang_s,
            )
        result.plans[mtbf] = plan.to_records()
        pts = []
        for name, retry, policy in ladder:
            point, dropped = _run_point(
                name,
                retry,
                policy,
                plan,
                seed,
                memory_mb,
                requests,
                rate,
                hold_s,
                n_plants,
                mtbf,
                trace_capacity,
            )
            pts.append(point)
            result.trace_dropped += dropped
        result.points[mtbf] = pts
    return result
