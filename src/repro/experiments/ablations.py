"""Ablations of the design choices DESIGN.md calls out.

* **Clone mode** — link-based cloning (non-persistent disks + redo
  logs) vs. explicit full-disk copy: the mechanism behind the paper's
  210 s-vs-52 s comparison, measured end to end.
* **Partial matching** — matching a deep cached prefix vs. only a
  bare-OS image for the In-VIGO workspace DAG: how many residual
  actions run and what that costs.
* **Speculative pre-creation** — the future-work latency-hiding
  optimization: request-visible latency with a pre-warmed clone pool
  vs. on-demand cloning.
* **Cost model** — Section 3.4's network+compute model vs. the
  prototype's memory-headroom model under a multi-domain workload:
  how many scarce host-only networks each consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.analysis.stats import Summary, summarize
from repro.core.spec import CreateRequest, HardwareSpec, NetworkSpec, SoftwareSpec
from repro.cost.models import (
    CostModel,
    MemoryAvailableCost,
    NetworkComputeCost,
)
from repro.experiments.runner import run_creation_experiment
from repro.plant.production import CloneMode
from repro.plant.speculative import SpeculativeClonePool
from repro.plant.warehouse import GoldenImage
from repro.sim.cluster import build_testbed
from repro.workloads.invigo import invigo_cached_prefix, invigo_workspace_dag
from repro.workloads.requests import experiment_request

__all__ = [
    "CloneModeAblation",
    "MatchingAblation",
    "SpeculativeAblation",
    "CostModelAblation",
    "run_clone_mode_ablation",
    "run_state_cache_ablation",
    "StateCacheAblation",
    "run_matching_ablation",
    "run_speculative_ablation",
    "run_cost_model_ablation",
    "ABLATIONS",
    "run_all_ablations",
]

REDHAT_OS = "linux-redhat-8.0"


# ---------------------------------------------------------------------------
# Clone mode
# ---------------------------------------------------------------------------


@dataclass
class CloneModeAblation:
    """LINK vs. COPY cloning for the 256 MB golden machine."""

    link_clone: Summary
    copy_clone: Summary
    link_creation: Summary
    copy_creation: Summary

    @property
    def speedup(self) -> float:
        """Mean COPY clone time over mean LINK clone time."""
        return self.copy_clone.mean / self.link_clone.mean

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: clone mode (256 MB golden machine)",
                "",
                f"{'mode':>8} {'clone mean (s)':>16} {'creation mean (s)':>19}",
                "-" * 46,
                f"{'link':>8} {self.link_clone.mean:>16.1f} "
                f"{self.link_creation.mean:>19.1f}",
                f"{'copy':>8} {self.copy_clone.mean:>16.1f} "
                f"{self.copy_creation.mean:>19.1f}",
                "-" * 46,
                f"link cloning is {self.speedup:.1f}x faster "
                "(paper: around 4x)",
            ]
        )


def run_clone_mode_ablation(
    seed: int = 2004, count: int = 8, memory_mb: int = 256
) -> CloneModeAblation:
    """Measure both clone modes on fresh testbeds."""
    link = run_creation_experiment(
        memory_mb, count, seed=seed, clone_mode=CloneMode.LINK
    )
    copy = run_creation_experiment(
        memory_mb, count, seed=seed, clone_mode=CloneMode.COPY
    )
    return CloneModeAblation(
        link_clone=summarize(link.clone_times),
        copy_clone=summarize(copy.clone_times),
        link_creation=summarize(link.creation_latencies),
        copy_creation=summarize(copy.creation_latencies),
    )


# ---------------------------------------------------------------------------
# Partial matching
# ---------------------------------------------------------------------------


@dataclass
class MatchingAblation:
    """Deep cached prefix vs. bare-OS image for the In-VIGO DAG."""

    with_matching: Summary
    without_matching: Summary
    residual_with: int
    residual_without: int

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: partial DAG matching (In-VIGO workspace DAG, "
                "9 actions)",
                "",
                f"{'warehouse':>22} {'residual actions':>17} "
                f"{'creation mean (s)':>19}",
                "-" * 61,
                f"{'cached prefix (A-C)':>22} {self.residual_with:>17d} "
                f"{self.with_matching.mean:>19.1f}",
                f"{'bare-OS image only':>22} {self.residual_without:>17d} "
                f"{self.without_matching.mean:>19.1f}",
            ]
        )


def _invigo_image(performed, image_id: str) -> GoldenImage:
    return GoldenImage(
        image_id=image_id,
        vm_type="vmware",
        os=REDHAT_OS,
        hardware=HardwareSpec(memory_mb=32, disk_gb=4.0),
        performed=tuple(performed),
        memory_state_mb=32.0,
    )


def _invigo_request(username: str = "arijit") -> CreateRequest:
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(
            os=REDHAT_OS, dag=invigo_workspace_dag(username)
        ),
        network=NetworkSpec(domain="acis.ufl.edu"),
        client_id="invigo",
        vm_type="vmware",
    )


def run_matching_ablation(
    seed: int = 2004, count: int = 8
) -> MatchingAblation:
    """Compare warehouses with and without the workspace prefix image."""
    results: Dict[str, List[float]] = {}
    residuals: Dict[str, int] = {}
    for label, images in (
        (
            "with",
            [_invigo_image(invigo_cached_prefix(), "workspace-prefix")],
        ),
        ("without", [_invigo_image((), "bare-os")]),
    ):
        bed = build_testbed(
            seed=seed, n_plants=2, memory_sizes=(), extra_images=images
        )
        latencies: List[float] = []

        def client() -> Generator:
            for _ in range(count):
                start = bed.env.now
                ad = yield from bed.shop.create(_invigo_request())
                latencies.append(bed.env.now - start)
                residuals[label] = int(ad["actions_executed"])

        bed.run(client())
        results[label] = latencies
    return MatchingAblation(
        with_matching=summarize(results["with"]),
        without_matching=summarize(results["without"]),
        residual_with=residuals["with"],
        residual_without=residuals["without"],
    )


# ---------------------------------------------------------------------------
# Speculative pre-creation
# ---------------------------------------------------------------------------


@dataclass
class SpeculativeAblation:
    """Pre-warmed clone pool vs. on-demand creation."""

    on_demand: Summary
    speculative: Summary
    pool_hits: int

    @property
    def latency_hidden(self) -> float:
        """Fraction of on-demand latency hidden by pre-creation."""
        return 1.0 - self.speculative.mean / self.on_demand.mean

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: speculative pre-creation of VM clones "
                "(32 MB, future-work feature)",
                "",
                f"{'strategy':>14} {'request latency mean (s)':>26}",
                "-" * 42,
                f"{'on-demand':>14} {self.on_demand.mean:>26.1f}",
                f"{'speculative':>14} {self.speculative.mean:>26.1f}",
                "-" * 42,
                f"{self.latency_hidden:.0%} of client-visible latency "
                f"hidden ({self.pool_hits} pool hits)",
            ]
        )


def run_speculative_ablation(
    seed: int = 2004, count: int = 8, memory_mb: int = 32
) -> SpeculativeAblation:
    """Serve a request burst from a pre-warmed pool vs. on demand."""
    on_demand = run_creation_experiment(
        memory_mb, count, seed=seed, n_plants=1
    )

    bed = build_testbed(seed=seed, n_plants=1)
    plant = bed.plants[0]
    prototype = experiment_request(memory_mb)
    pool = SpeculativeClonePool(plant, prototype, target=count)
    latencies: List[float] = []

    def warm_and_serve() -> Generator:
        yield from pool.fill()
        for i in range(count):
            request = experiment_request(memory_mb)
            start = bed.env.now
            ad = yield from pool.acquire(request)
            if ad is None:  # pool exhausted — fall back
                ad = yield from plant.create(
                    request, f"fallback-{i}"
                )
            latencies.append(bed.env.now - start)

    bed.run(warm_and_serve())
    return SpeculativeAblation(
        on_demand=summarize(on_demand.creation_latencies),
        speculative=summarize(latencies),
        pool_hits=pool.hits,
    )


# ---------------------------------------------------------------------------
# Golden-state local caching
# ---------------------------------------------------------------------------


@dataclass
class StateCacheAblation:
    """Per-clone NFS copies vs. node-local golden-state replicas."""

    nfs_every_time: Summary
    local_cache: Summary

    @property
    def steady_state_speedup(self) -> float:
        """Mean clone-time improvement once the replica is warm."""
        return self.nfs_every_time.mean / self.local_cache.mean

    def render(self) -> str:
        return "\n".join(
            [
                "Ablation: golden-state caching (256 MB, two plants, "
                "sequential clones)",
                "",
                f"{'strategy':>20} {'clone mean (s)':>16} "
                f"{'clone max (s)':>15}",
                "-" * 53,
                f"{'NFS every clone':>20} "
                f"{self.nfs_every_time.mean:>16.1f} "
                f"{self.nfs_every_time.maximum:>15.1f}",
                f"{'node-local replica':>20} "
                f"{self.local_cache.mean:>16.1f} "
                f"{self.local_cache.maximum:>15.1f}",
                "-" * 53,
                f"{self.steady_state_speedup:.1f}x mean speedup once "
                "the replica is warm (first clone still pays NFS)",
            ]
        )


def run_state_cache_ablation(
    seed: int = 2004, count: int = 8, memory_mb: int = 256
) -> StateCacheAblation:
    """Clone the same golden machine repeatedly, cache off vs. on.

    Two plants keep hosts out of the memory-pressure regime so the
    measurement isolates the state-transfer path.
    """
    summaries = {}
    for cached in (False, True):
        bed = build_testbed(seed=seed, n_plants=2)
        for line in bed.lines["vmware"]:
            line.local_state_cache = cached
        run = run_creation_experiment(
            memory_mb, count, seed=seed, testbed=bed
        )
        summaries[cached] = summarize(run.clone_times)
    return StateCacheAblation(
        nfs_every_time=summaries[False], local_cache=summaries[True]
    )


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@dataclass
class CostModelAblation:
    """Host-only network consumption under the two cost models."""

    #: model label → number of fresh host-only network allocations.
    fresh_networks: Dict[str, int]
    #: model label → standard deviation of per-plant VM counts.
    load_imbalance: Dict[str, float]

    def render(self) -> str:
        lines = [
            "Ablation: cost model vs. host-only network consumption "
            "(4 domains x 8 VMs, 4 plants)",
            "",
            f"{'cost model':>20} {'fresh networks':>15} "
            f"{'load stddev':>12}",
            "-" * 50,
        ]
        for label in self.fresh_networks:
            lines.append(
                f"{label:>20} {self.fresh_networks[label]:>15d} "
                f"{self.load_imbalance[label]:>12.2f}"
            )
        return "\n".join(lines)


def run_cost_model_ablation(
    seed: int = 2004,
    domains: int = 4,
    vms_per_domain: int = 8,
) -> CostModelAblation:
    """Multi-domain workload under both Section 3.4 and 4.1 models."""
    fresh: Dict[str, int] = {}
    imbalance: Dict[str, float] = {}
    models: Dict[str, CostModel] = {
        "network+compute": NetworkComputeCost(),
        "memory-headroom": MemoryAvailableCost(),
    }
    for label, model in models.items():
        bed = build_testbed(
            seed=seed,
            n_plants=4,
            memory_sizes=(32,),
            cost_model=model,
            networks_per_plant=4,
        )
        fresh_count = 0
        created: List[str] = []

        def client() -> Generator:
            nonlocal fresh_count
            for v in range(vms_per_domain):
                for d in range(domains):
                    request = experiment_request(
                        32, domain=f"domain{d}.example.org"
                    )
                    ad = yield from bed.shop.create(request)
                    created.append(str(ad["plant"]))
                    if ad["network_fresh"] is True:
                        fresh_count += 1

        bed.run(client())
        fresh[label] = fresh_count
        counts = [created.count(p.name) for p in bed.plants]
        imbalance[label] = float(np.std(counts))
    return CostModelAblation(
        fresh_networks=fresh, load_imbalance=imbalance
    )


# ---------------------------------------------------------------------------
# Suite fan-out
# ---------------------------------------------------------------------------

#: Name → driver for every ablation above.  Each driver builds its own
#: seeded testbed(s), so the set is embarrassingly parallel.
ABLATIONS: Dict[str, object] = {
    "clone_mode": run_clone_mode_ablation,
    "matching": run_matching_ablation,
    "speculative": run_speculative_ablation,
    "state_cache": run_state_cache_ablation,
    "cost_model": run_cost_model_ablation,
}


def run_all_ablations(
    seed: int = 2004,
    mode: str = "auto",
    max_workers: int = None,
    cache=None,
    names=None,
) -> Dict[str, object]:
    """Run every ablation (or the ``names`` subset), fanned out.

    Results merge in :data:`ABLATIONS` order regardless of completion
    order.  With a :class:`~repro.experiments.cache.ResultCache`,
    each ablation result is memoized on disk individually.
    """
    from repro.experiments.parallel import Job, run_jobs

    selected = {
        name: fn
        for name, fn in ABLATIONS.items()
        if names is None or name in names
    }
    results: Dict[str, object] = {}
    pending = []
    for name, fn in selected.items():
        if cache is not None:
            hit = cache.get(f"ablation-{name}", {"seed": seed})
            if hit is not None:
                results[name] = hit
                continue
        pending.append(Job(key=name, fn=fn, kwargs={"seed": seed}))
    if pending:
        fresh = run_jobs(pending, mode=mode, max_workers=max_workers)
        for name, value in fresh.items():
            if cache is not None:
                cache.put(f"ablation-{name}", {"seed": seed}, value)
            results[name] = fresh[name]
    return {name: results[name] for name in selected if name in results}
