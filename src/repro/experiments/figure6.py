"""Figure 6 — cloning time as a function of VM sequence number.

The sequence number is the order of the client's creation requests
through VMShop.  The paper's observation: cloning times grow once
plants host many VMs — most noticeable for the 64 MB run (up to 16
clones per 1.5 GB host) and 256 MB run (5 per host) — which our host
memory-pressure model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import sequence_series
from repro.analysis.tables import render_series
from repro.experiments.runner import ExperimentRun, run_creation_suite

__all__ = ["Figure6Result", "run_figure6"]


@dataclass
class Figure6Result:
    """Reproduced Figure 6 data."""

    #: label → [(sequence number, cloning time)].
    series: Dict[str, List[Tuple[int, float]]]
    runs: Dict[int, ExperimentRun]

    def render(self, max_rows: int = 26) -> str:
        """The figure as a paper-style series table."""
        return render_series(
            "Figure 6: cloning time vs. VM sequence number",
            self.series,
            x_label="sequence",
            y_label="cloning time (s)",
            max_rows=max_rows,
        )

    def trend_slope(self, label: str) -> float:
        """Least-squares slope (s per request) of one series."""
        points = self.series[label]
        xs = np.array([x for x, _ in points], dtype=float)
        ys = np.array([y for _, y in points], dtype=float)
        if xs.size < 2:
            return 0.0
        return float(np.polyfit(xs, ys, 1)[0])

    def head_tail_ratio(self, label: str, k: int = 10) -> float:
        """Mean of the last ``k`` points over the first ``k``."""
        points = [y for _, y in self.series[label]]
        k = min(k, max(1, len(points) // 2))
        head = float(np.mean(points[:k]))
        tail = float(np.mean(points[-k:]))
        return tail / head if head > 0 else float("nan")


def run_figure6(
    seed: int = 2004,
    suite: Optional[Dict[int, ExperimentRun]] = None,
) -> Figure6Result:
    """Reproduce Figure 6 (reusing a precomputed suite if given)."""
    runs = suite or run_creation_suite(seed=seed)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for memory in sorted(runs):
        label = f"{memory} MB"
        series[label] = sequence_series(runs[memory].clone_times)
    return Figure6Result(series=series, runs=runs)
