"""Kernel-sharding benchmark: throughput sweep across shard counts.

Runs the ``kernelbench`` scenario — eight independent paper testbeds
under open-loop Poisson load, spilling work around a WAN ring — at a
sweep of shard counts, and cross-checks the determinism contract:
the merged-trace fingerprint must be identical for every shard count
and stable across repeats of the same (seed, partition).

Two throughput numbers are reported per shard count:

* ``wall ev/s`` — total kernel events over coordinator wall-clock;
  this is what speeds up on a machine with free cores.
* ``agg ev/s`` — sum over shards of (events / shard CPU-seconds);
  the per-core delivery rate net of synchronization overhead, which
  is comparable across machines regardless of how many cores happen
  to be free (on an idle N-core host the two coincide).

The same scenario scales to the million-request load-test rung::

    vmplants kernelbench --sites 64 --shards 8 --requests-per-site 15625

(64 sites x 15625 requests = 1,000,000 VM creations per sweep point.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.shard import ShardedTestbed

__all__ = [
    "KernelBenchPoint",
    "KernelBenchResult",
    "run_kernelbench",
]


@dataclass(frozen=True)
class KernelBenchPoint:
    """One timed run at a given shard count."""

    shards: int
    sites: int
    events: int
    wall_s: float
    cpu_s: float
    wall_events_per_sec: float
    agg_events_per_sec: float
    created: int
    spills: int
    failed: int

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "sites": self.sites,
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "cpu_s": round(self.cpu_s, 4),
            "wall_events_per_sec": round(self.wall_events_per_sec, 1),
            "agg_events_per_sec": round(self.agg_events_per_sec, 1),
            "created": self.created,
            "spills": self.spills,
            "failed": self.failed,
        }


@dataclass
class KernelBenchResult:
    """Full sweep plus the determinism cross-check."""

    seed: int
    sites: int
    shard_counts: Tuple[int, ...]
    params: Dict[str, Any]
    points: List[KernelBenchPoint] = field(default_factory=list)
    #: shard count -> merged-trace fingerprint (small determinism runs).
    fingerprints: Dict[int, str] = field(default_factory=dict)
    #: Fingerprint of the repeated multi-shard run (stability check).
    repeat_fingerprint: str = ""

    @property
    def deterministic(self) -> bool:
        """All shard counts agree and the repeat reproduced exactly."""
        fps = set(self.fingerprints.values())
        return len(fps) == 1 and self.repeat_fingerprint in fps

    def point(self, shards: int) -> KernelBenchPoint:
        for p in self.points:
            if p.shards == shards:
                return p
        raise KeyError(f"no point for {shards} shards")

    def agg_speedup(self, shards: int) -> float:
        """Aggregate-throughput ratio vs the single-shard run."""
        base = self.point(1).agg_events_per_sec
        return self.point(shards).agg_events_per_sec / base if base else 0.0

    def wall_speedup(self, shards: int) -> float:
        base = self.point(1).wall_events_per_sec
        return (
            self.point(shards).wall_events_per_sec / base if base else 0.0
        )

    def render(self) -> str:
        lines = [
            "Extension: sharded parallel DES kernel "
            f"({self.sites} sites x {self.params['requests']} requests, "
            f"rate {self.params['rate_per_s']:.1f}/s, "
            f"lookahead {self.params['link_latency_s']:.0f}s)",
            "",
            f"{'shards':>6} {'events':>9} {'wall (s)':>9} "
            f"{'wall ev/s':>10} {'agg ev/s':>10} {'agg speedup':>12}",
            "-" * 62,
        ]
        for p in self.points:
            lines.append(
                f"{p.shards:>6d} {p.events:>9d} {p.wall_s:>9.2f} "
                f"{p.wall_events_per_sec:>10.0f} "
                f"{p.agg_events_per_sec:>10.0f} "
                f"{self.agg_speedup(p.shards):>11.2f}x"
            )
        lines.append("-" * 62)
        fps = sorted(set(self.fingerprints.values()))
        if self.deterministic:
            lines.append(
                f"determinism: merged-trace fingerprint {fps[0][:16]} "
                f"identical across shard counts "
                f"{sorted(self.fingerprints)} and across repeats"
            )
        else:
            lines.append(
                "determinism: FAILED — fingerprints "
                f"{ {k: v[:16] for k, v in self.fingerprints.items()} } "
                f"repeat {self.repeat_fingerprint[:16]}"
            )
        return "\n".join(lines)

    def to_record(self) -> dict:
        return {
            "seed": self.seed,
            "sites": self.sites,
            "shard_counts": list(self.shard_counts),
            "params": {
                k: v for k, v in sorted(self.params.items())
            },
            "points": [p.as_dict() for p in self.points],
            "agg_speedups": {
                str(s): round(self.agg_speedup(s), 2)
                for s in self.shard_counts
            },
            "wall_speedups": {
                str(s): round(self.wall_speedup(s), 2)
                for s in self.shard_counts
            },
            "deterministic": self.deterministic,
            "fingerprint": next(iter(self.fingerprints.values()), ""),
        }


def run_kernelbench(
    seed: int = 2004,
    sites: int = 8,
    shard_counts: Sequence[int] = (1, 4, 8),
    requests_per_site: int = 160,
    params: Optional[Dict[str, Any]] = None,
    determinism_requests: int = 20,
    deadline_s: Optional[float] = 600.0,
) -> KernelBenchResult:
    """Sweep shard counts; cross-check the determinism contract.

    Timing runs disable tracing (``collect=None``) so the hot loop is
    undisturbed; the determinism cross-check uses smaller runs with
    fingerprint collection at 1 shard, the highest swept count, and a
    repeat of the latter.
    """
    shard_counts = tuple(shard_counts)
    for s in shard_counts:
        if not 1 <= s <= sites:
            raise ValueError(
                f"shard count {s} outside [1, sites={sites}]"
            )
    if 1 not in shard_counts:
        raise ValueError("shard_counts must include 1 (the baseline)")
    prm: Dict[str, Any] = {"requests": requests_per_site}
    prm.update(params or {})

    result = KernelBenchResult(
        seed=seed,
        sites=sites,
        shard_counts=shard_counts,
        params={},
    )
    for shards in shard_counts:
        plan = ShardedTestbed(seed=seed, sites=sites, shards=shards)
        run = plan.run(params=prm, collect=None, deadline_s=deadline_s)
        result.params = run.params
        stats = run.combined_stats()
        result.points.append(
            KernelBenchPoint(
                shards=shards,
                sites=sites,
                events=run.total_events,
                wall_s=run.wall_s,
                cpu_s=sum(s["cpu_s"] for s in run.shard_results),
                wall_events_per_sec=run.wall_events_per_sec,
                agg_events_per_sec=run.agg_events_per_sec,
                created=int(stats.get("created", 0)),
                spills=int(stats.get("spills_recv", 0)),
                failed=int(
                    stats.get("failed", 0)
                    + stats.get("spill_failed", 0)
                ),
            )
        )

    det_prm = dict(prm)
    det_prm["requests"] = min(determinism_requests, requests_per_site)
    det_counts = sorted({1, max(shard_counts)})
    for shards in det_counts:
        plan = ShardedTestbed(seed=seed, sites=sites, shards=shards)
        run = plan.run(
            params=det_prm, collect="fingerprint", deadline_s=deadline_s
        )
        result.fingerprints[shards] = run.fingerprint()
    repeat_shards = det_counts[-1]
    plan = ShardedTestbed(
        seed=seed, sites=sites, shards=repeat_shards
    )
    run = plan.run(
        params=det_prm, collect="fingerprint", deadline_s=deadline_s
    )
    result.repeat_fingerprint = run.fingerprint()
    return result
