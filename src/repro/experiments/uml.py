"""The UML production-line study (Section 4.3).

"For a 32 MB UML VM that is instantiated via a full reboot, the
average cloning time is 76 s."  The UML line clones a copy-on-write
root file system (cheap) and then boots the guest (expensive) — no
suspended memory state is copied, so cloning time barely depends on
memory size but is dominated by the boot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_summary_table
from repro.experiments.runner import ExperimentRun, run_creation_experiment

__all__ = ["UMLResult", "run_uml"]

#: The number reported in Section 4.3.
PAPER_UML_MEAN_S = 76.0


@dataclass
class UMLResult:
    """Reproduced UML study."""

    clone_summary: Summary
    creation_summary: Summary
    run: ExperimentRun

    def render(self) -> str:
        """Paper-style summary table."""
        return render_summary_table(
            "UML production line, 32 MB VM instantiated via full reboot "
            f"(paper: average cloning time {PAPER_UML_MEAN_S:.0f} s)",
            {
                "cloning": self.clone_summary,
                "creation": self.creation_summary,
            },
        )


def run_uml(
    seed: int = 2004, count: int = 40, memory_mb: int = 32
) -> UMLResult:
    """Run the UML boot-clone experiment."""
    run = run_creation_experiment(
        memory_mb,
        count,
        seed=seed,
        vm_type="uml",
    )
    return UMLResult(
        clone_summary=summarize(run.clone_times),
        creation_summary=summarize(run.creation_latencies),
        run=run,
    )


@dataclass
class SBUMLResult:
    """Boot-clone vs. SBUML checkpoint-resume clone (ongoing work,
    Section 4.3: 'With checkpointing techniques such as SBUML, it is
    possible to clone virtual machines from the corresponding
    snapshots and resume them without a full reboot')."""

    boot: Summary
    resume: Summary

    @property
    def speedup(self) -> float:
        """Boot-clone mean over resume-clone mean."""
        return self.boot.mean / self.resume.mean

    def render(self) -> str:
        return render_summary_table(
            "UML cloning: full reboot vs. SBUML checkpoint resume "
            f"(32 MB; resume is {self.speedup:.1f}x faster)",
            {"boot": self.boot, "resume (SBUML)": self.resume},
        )


def run_sbuml(
    seed: int = 2004, count: int = 20, memory_mb: int = 32
) -> SBUMLResult:
    """Compare boot-based and checkpoint-resume UML cloning."""
    from repro.sim.cluster import build_testbed
    from repro.workloads.requests import golden_image

    boot = run_creation_experiment(
        memory_mb, count, seed=seed, vm_type="uml"
    )

    # An SBUML-checkpointed warehouse: replace the boot image.
    bed = build_testbed(
        seed=seed,
        vm_types=("uml",),
        memory_sizes=(),
        extra_images=[
            golden_image(memory_mb, vm_type="uml", checkpointed=True)
        ],
    )
    resume = run_creation_experiment(
        memory_mb, count, seed=seed, vm_type="uml", testbed=bed
    )
    return SBUMLResult(
        boot=summarize(boot.clone_times),
        resume=summarize(resume.clone_times),
    )
