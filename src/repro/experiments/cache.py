"""Content-addressed on-disk cache for experiment results.

Re-simulating the paper suite on every pytest session (or every
``examples/reproduce_paper.py`` invocation) is pure waste: the runs
are deterministic functions of (experiment id, parameters, seed,
simulator source).  :class:`ResultCache` memoizes results on disk
under a key that hashes exactly those four inputs, so

* a second session with unchanged code loads the pickled result in
  milliseconds instead of re-simulating, and
* *any* edit to the ``repro`` package source changes the digest and
  transparently invalidates every entry — no manual cache busting
  after simulator changes.

Entries are written atomically (temp file + :func:`os.replace`), so
an interrupted run can never leave a truncated artifact that poisons
later sessions; a corrupt or unreadable entry is treated as a miss
and deleted.

Opt-outs: pass ``enabled=False``, set ``REPRO_NO_CACHE=1``, or use
``--no-cache`` on the CLI entry points that expose it.  The cache
root defaults to ``~/.cache/vmplants-repro`` and can be moved with
``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "ResultCache",
    "default_cache",
    "source_digest",
    "param_token",
    "cache_enabled_by_env",
]

_DIGEST_CACHE: Optional[str] = None


def source_digest(refresh: bool = False) -> str:
    """Digest of every ``repro`` source file (cached per process).

    Hashes relative path + content of all ``*.py`` files under the
    installed ``repro`` package in sorted order, so any source change
    anywhere in the simulator, plants, shop or experiment code yields
    a different digest.
    """
    global _DIGEST_CACHE
    if _DIGEST_CACHE is not None and not refresh:
        return _DIGEST_CACHE
    import repro

    root = Path(repro.__file__).parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    _DIGEST_CACHE = h.hexdigest()
    return _DIGEST_CACHE


def param_token(value: Any) -> str:
    """Canonical, recursion-stable string form of a parameter value.

    Handles the types experiment signatures actually use — scalars,
    enums, dataclasses (e.g. ``LatencyModel``), model objects (e.g.
    cost models, via class name + instance ``__dict__``), and nested
    containers with deterministic dict ordering.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={param_token(getattr(value, f.name))}"
            for f in fields(value)
        )
        return f"{type(value).__name__}({inner})"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{param_token(k)}:{param_token(value[k])}"
            for k in sorted(value, key=repr)
        )
        return f"{{{inner}}}"
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        inner = ",".join(param_token(v) for v in items)
        return f"{type(value).__name__}[{inner}]"
    state = getattr(value, "__dict__", None)
    if state is not None:
        return f"{type(value).__qualname__}({param_token(dict(state))})"
    return repr(value)


def cache_enabled_by_env() -> bool:
    """False when ``REPRO_NO_CACHE`` disables caching globally."""
    return os.environ.get("REPRO_NO_CACHE", "").lower() not in (
        "1",
        "true",
        "yes",
    )


class ResultCache:
    """Pickle store keyed by (experiment id, params, source digest)."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        enabled: bool = True,
        digest: Optional[str] = None,
    ):
        env_root = os.environ.get("REPRO_CACHE_DIR")
        if root is None:
            root = env_root or (
                Path.home() / ".cache" / "vmplants-repro"
            )
        self.root = Path(root)
        self.enabled = enabled and cache_enabled_by_env()
        #: Override of the source digest (tests use this to simulate
        #: stale entries); None means "hash the live source tree".
        self._digest = digest
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    def digest(self) -> str:
        return self._digest or source_digest()

    def key(self, experiment_id: str, params: Mapping[str, Any]) -> str:
        token = param_token(dict(params))
        blob = f"{experiment_id}\0{token}\0{self.digest()}"
        return hashlib.sha256(blob.encode()).hexdigest()

    def path(self, experiment_id: str, params: Mapping[str, Any]) -> Path:
        key = self.key(experiment_id, params)
        return self.root / f"{experiment_id}-{key[:32]}.pkl"

    # -- storage --------------------------------------------------------
    def get(self, experiment_id: str, params: Mapping[str, Any]) -> Any:
        """The cached result, or None on a miss (or disabled cache)."""
        if not self.enabled:
            return None
        path = self.path(experiment_id, params)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt/unreadable entry: drop it and recompute.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(
        self, experiment_id: str, params: Mapping[str, Any], value: Any
    ) -> None:
        """Store ``value`` atomically; silently no-op on I/O failure."""
        if not self.enabled:
            return
        detach = getattr(value, "detach", None)
        if callable(detach):
            value = detach()
        path = self.path(experiment_id, params)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass

    # -- maintenance ----------------------------------------------------
    def entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.pkl")))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"<ResultCache {state} root={self.root}"
            f" hits={self.hits} misses={self.misses}>"
        )


_DEFAULT: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """Process-wide cache instance (honours the env opt-outs)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ResultCache()
    return _DEFAULT
