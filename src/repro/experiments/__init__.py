"""Experiment drivers reproducing the paper's evaluation.

One module per artifact: Figures 4–6, the UML study, the Section 3.4
cost-function illustration, the in-text numbers of Section 4.3, and
the ablations DESIGN.md calls out.  Benchmarks under ``benchmarks/``
are thin wrappers that run these and print paper-style tables.
"""

from repro.experiments.runner import (
    CreationSample,
    ExperimentRun,
    run_creation_experiment,
    run_creation_suite,
)

__all__ = [
    "CreationSample",
    "ExperimentRun",
    "run_creation_experiment",
    "run_creation_suite",
]
