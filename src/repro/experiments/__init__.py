"""Experiment drivers reproducing the paper's evaluation.

One module per artifact: Figures 4–6, the UML study, the Section 3.4
cost-function illustration, the in-text numbers of Section 4.3, and
the ablations DESIGN.md calls out.  Benchmarks under ``benchmarks/``
are thin wrappers that run these and print paper-style tables.

The performance layer lives here too: :mod:`repro.experiments.
parallel` fans independent runs out across a process pool with a
deterministic merge, and :mod:`repro.experiments.cache` memoizes
results on disk keyed by (experiment id, parameters, seed, source
digest).
"""

from repro.experiments.cache import (
    ResultCache,
    default_cache,
    source_digest,
)
from repro.experiments.loadtest import (
    LoadPoint,
    LoadTestResult,
    run_loadtest,
)
from repro.experiments.parallel import (
    Job,
    parallel_map,
    run_jobs,
    run_seed_sweep,
)
from repro.experiments.runner import (
    CreationSample,
    ExperimentRun,
    run_creation_experiment,
    run_creation_suite,
)

__all__ = [
    "CreationSample",
    "ExperimentRun",
    "run_creation_experiment",
    "run_creation_suite",
    "Job",
    "run_jobs",
    "parallel_map",
    "run_seed_sweep",
    "ResultCache",
    "default_cache",
    "source_digest",
    "LoadPoint",
    "LoadTestResult",
    "run_loadtest",
]
