"""Figure 5 — distribution of VM cloning latencies.

Cloning latency is measured "from the time the PPP requests cloning to
the completion of the VMware resume operation on a cloned machine",
which is exactly what the production lines' clone records capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.histograms import FIG5_BIN_CENTERS, Histogram, histogram
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_histogram_table
from repro.experiments.runner import ExperimentRun, run_creation_suite

__all__ = ["Figure5Result", "run_figure5"]


@dataclass
class Figure5Result:
    """Reproduced Figure 5 data."""

    histograms: Dict[str, Histogram]
    summaries: Dict[str, Summary]
    runs: Dict[int, ExperimentRun]

    def render(self) -> str:
        """The figure as a paper-style table."""
        return render_histogram_table(
            "Figure 5: distribution of VM cloning latencies "
            "(normalized frequency of occurrence)",
            self.histograms,
            x_label="cloning time (s)",
        )


def run_figure5(
    seed: int = 2004,
    suite: Optional[Dict[int, ExperimentRun]] = None,
) -> Figure5Result:
    """Reproduce Figure 5 (reusing a precomputed suite if given)."""
    runs = suite or run_creation_suite(seed=seed)
    histograms: Dict[str, Histogram] = {}
    summaries: Dict[str, Summary] = {}
    for memory in sorted(runs):
        label = f"{memory} MB"
        times = runs[memory].clone_times
        histograms[label] = histogram(times, FIG5_BIN_CENTERS)
        summaries[label] = summarize(times)
    return Figure5Result(
        histograms=histograms, summaries=summaries, runs=runs
    )
