"""The Section 3.4 cost-function illustration.

Two VMPlants A and B, each with 4 host-only networks and room for at
most 32 client VMs; network cost 50, compute-cycles cost 4 × (VMs on
the plant).  One client domain keeps requesting VMs:

* request 1 — both plants bid 50 (network cost); the shop picks one at
  random, say A;
* requests 2..13 — A bids ``4·k`` (its network is already allocated),
  B still bids 50; A keeps winning while ``4·k < 50``, i.e. through
  its 13th VM (cost 48 at the 13th request);
* request 14 — A's compute cost (52) finally exceeds B's network cost
  (50); the shop picks B, allocating a second host-only network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from repro.cost.models import NetworkComputeCost
from repro.sim.cluster import Testbed, build_testbed
from repro.workloads.requests import experiment_request

__all__ = ["CostFnResult", "run_costfn"]


@dataclass
class CostFnResult:
    """Reproduced illustration data."""

    #: (sequence, winning plant, winning bid, all bids) per request.
    decisions: List[Tuple[int, str, float, Dict[str, float]]]
    testbed: Testbed

    @property
    def first_plant(self) -> str:
        """Plant chosen for the first request."""
        return self.decisions[0][1]

    @property
    def crossover(self) -> int:
        """1-based sequence number of the first switch to a new plant."""
        first = self.first_plant
        for seq, plant, _, _ in self.decisions:
            if plant != first:
                return seq
        return 0

    def render(self) -> str:
        """Per-request decision table."""
        lines = [
            "Section 3.4 cost-function illustration "
            "(network cost 50, compute cost 4/VM)",
            "",
            f"{'request':>8} {'bid A':>8} {'bid B':>8} {'chosen':>8}",
            "-" * 36,
        ]
        names = sorted(self.decisions[0][3])
        for seq, plant, _, bids in self.decisions:
            row = f"{seq:>8d} "
            row += " ".join(f"{bids.get(n, float('nan')):>8.0f}" for n in names)
            row += f" {plant:>8}"
            lines.append(row)
        lines.append("-" * 36)
        lines.append(
            f"crossover to the second plant at request {self.crossover} "
            "(paper: 14th request, after 13 VMs on one plant)"
        )
        return "\n".join(lines)


def run_costfn(
    seed: int = 2004,
    requests: int = 16,
    network_cost: float = 50.0,
    compute_cost_per_vm: float = 4.0,
) -> CostFnResult:
    """Run the two-plant illustration."""
    bed = build_testbed(
        seed=seed,
        n_plants=2,
        memory_sizes=(32,),
        cost_model=NetworkComputeCost(network_cost, compute_cost_per_vm),
        networks_per_plant=4,
        max_vms_per_plant=32,
    )
    result = CostFnResult(decisions=[], testbed=bed)

    def client() -> Generator:
        for seq in range(1, requests + 1):
            request = experiment_request(32, domain="client.example.org")
            bids = yield from bed.shop.estimate(request)
            bid_map = {b.bidder_name: b.cost for b in bids}
            ad = yield from bed.shop.create(request)
            plant = str(ad["plant"])
            result.decisions.append(
                (seq, plant, bid_map.get(plant, float("nan")), bid_map)
            )

    bed.run(client())
    return result
