"""Load-driven provisioning-throughput experiment.

The paper measures creation latency one request at a time; a grid
portal in production sees an *arrival stream*.  This experiment
drives the simulated site open-loop — Poisson arrivals at a swept
rate, every request timed individually, finished VMs collected after
a hold period — and compares provisioning feature stacks:

* ``baseline`` — the paper's site, every clone pays the NFS path;
* ``cache`` — host-side golden-state LRU caches;
* ``cache+coalesce`` — plus in-flight transfer coalescing;
* ``cache+coalesce+pool`` — plus adaptive speculative pools.

Arrival times come from one named RNG stream, so every variant faces
bit-identical demand; only the provisioning machinery differs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError
from repro.provisioning import ProvisioningConfig
from repro.sim.cluster import build_testbed
from repro.workloads.requests import poisson_arrivals, request_stream

__all__ = [
    "VARIANTS",
    "LoadPoint",
    "LoadTestResult",
    "run_loadtest",
]


def _variant_configs(cache_mb: float) -> Dict[str, ProvisioningConfig]:
    return {
        "baseline": ProvisioningConfig(),
        "cache": ProvisioningConfig(host_cache_mb=cache_mb),
        "cache+coalesce": ProvisioningConfig(
            host_cache_mb=cache_mb, coalesce_transfers=True
        ),
        "cache+coalesce+pool": ProvisioningConfig(
            host_cache_mb=cache_mb,
            coalesce_transfers=True,
            speculative_pools=True,
        ),
    }


#: Feature stacks compared, in ablation order.
VARIANTS: Tuple[str, ...] = tuple(_variant_configs(512.0))


@dataclass(frozen=True)
class LoadPoint:
    """One (variant, arrival rate) measurement."""

    variant: str
    rate_per_s: float
    requests: int
    ok: int
    failed: int
    p50_s: float
    p95_s: float
    mean_s: float
    makespan_s: float
    creates_per_s: float
    nfs_mb: float
    cache_hits: int
    coalesced: int
    pool_hits: int
    #: SHA-256 over the per-request latencies (determinism checks).
    fingerprint: str

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "rate_per_s": self.rate_per_s,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "makespan_s": self.makespan_s,
            "creates_per_s": self.creates_per_s,
            "nfs_mb": self.nfs_mb,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "pool_hits": self.pool_hits,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LoadTestResult:
    """Full sweep: variant → points in increasing arrival rate."""

    seed: int
    memory_mb: int
    requests: int
    rates: Tuple[float, ...]
    cache_mb: float
    n_plants: int = 8
    points: Dict[str, List[LoadPoint]] = field(default_factory=dict)

    def point(self, variant: str, rate: float) -> LoadPoint:
        """The measurement for one (variant, rate) combination."""
        for p in self.points[variant]:
            if p.rate_per_s == rate:
                return p
        raise KeyError(f"no point for {variant!r} at rate {rate}")

    def speedup_at(self, rate: float) -> float:
        """Sustained-throughput ratio, full stack over baseline."""
        base = self.point("baseline", rate)
        full = self.point("cache+coalesce+pool", rate)
        return full.creates_per_s / base.creates_per_s

    def p95_improvement_at(self, rate: float) -> float:
        """p95 creation-latency ratio, baseline over full stack."""
        base = self.point("baseline", rate)
        full = self.point("cache+coalesce+pool", rate)
        return base.p95_s / full.p95_s

    def render(self) -> str:
        top = max(self.rates)
        lines = [
            "Extension: provisioning throughput under load "
            f"({self.requests} x {self.memory_mb} MB VMs, "
            f"{self.n_plants} plants, "
            f"Poisson arrivals, cache {self.cache_mb:.0f} MB/host)",
            "",
            f"{'variant':<20} {'rate/s':>7} {'ok':>4} {'p50 (s)':>8} "
            f"{'p95 (s)':>8} {'creates/s':>10} {'NFS MB':>8} "
            f"{'hits':>5} {'coal':>5} {'pool':>5}",
            "-" * 88,
        ]
        for variant, pts in self.points.items():
            for p in pts:
                lines.append(
                    f"{variant:<20} {p.rate_per_s:>7.2f} {p.ok:>4d} "
                    f"{p.p50_s:>8.1f} {p.p95_s:>8.1f} "
                    f"{p.creates_per_s:>10.3f} {p.nfs_mb:>8.0f} "
                    f"{p.cache_hits:>5d} {p.coalesced:>5d} "
                    f"{p.pool_hits:>5d}"
                )
        lines.append("-" * 88)
        lines.append(
            f"at {top:.2f} req/s the full stack sustains "
            f"{self.speedup_at(top):.1f}x the baseline creates/sec at "
            f"{self.p95_improvement_at(top):.1f}x lower p95 latency"
        )
        return "\n".join(lines)


def _fingerprint(latencies: Sequence[float]) -> str:
    payload = ",".join(f"{v:.9f}" for v in latencies)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _run_point(
    variant: str,
    config: ProvisioningConfig,
    seed: int,
    memory_mb: int,
    requests: int,
    rate: float,
    hold_s: float,
    n_plants: int,
) -> LoadPoint:
    bed = build_testbed(seed=seed, n_plants=n_plants, provisioning=config)
    stream = request_stream(memory_mb, requests)
    # One shared stream name: every variant sees identical arrivals.
    times = poisson_arrivals(
        bed.rng, rate, requests, stream=f"loadtest/{rate}"
    )
    latencies: List[float] = []
    failures = [0]

    def one(at: float, request) -> Generator:
        yield bed.env.timeout(at)
        start = bed.env.now
        try:
            ad = yield from bed.shop.create(request)
        except ReproError:
            failures[0] += 1
            return
        latencies.append(bed.env.now - start)
        yield bed.env.timeout(hold_s)
        yield from bed.shop.destroy(str(ad["vmid"]))

    def client() -> Generator:
        procs = [
            bed.env.process(one(at, request))
            for at, request in zip(times, stream)
        ]
        yield bed.env.all_of(procs)

    start = bed.env.now
    bed.run(client())
    makespan = bed.env.now - start
    sample = np.asarray(latencies, dtype=float)
    ok = int(sample.size)
    return LoadPoint(
        variant=variant,
        rate_per_s=rate,
        requests=requests,
        ok=ok,
        failed=failures[0],
        p50_s=float(np.percentile(sample, 50)) if ok else float("nan"),
        p95_s=float(np.percentile(sample, 95)) if ok else float("nan"),
        mean_s=float(sample.mean()) if ok else float("nan"),
        makespan_s=makespan,
        creates_per_s=ok / makespan if makespan > 0 else 0.0,
        nfs_mb=float(bed.nfs.mb_served),
        cache_hits=sum(
            h.state_cache.hits for h in bed.hosts if h.state_cache
        ),
        coalesced=bed.nfs.coalescer.requests_coalesced,
        pool_hits=sum(p.hits for p in bed.pools),
        fingerprint=_fingerprint(latencies),
    )


def run_loadtest(
    seed: int = 2004,
    memory_mb: int = 64,
    requests: int = 64,
    rates: Sequence[float] = (0.05, 0.2, 1.2),
    cache_mb: float = 512.0,
    hold_s: float = 90.0,
    n_plants: int = 8,
    variants: Sequence[str] = VARIANTS,
) -> LoadTestResult:
    """Sweep arrival rates across provisioning feature stacks."""
    if requests <= 0:
        raise ValueError("requests must be positive")
    configs = _variant_configs(cache_mb)
    unknown = set(variants) - set(configs)
    if unknown:
        raise ValueError(f"unknown variants: {sorted(unknown)}")
    result = LoadTestResult(
        seed=seed,
        memory_mb=memory_mb,
        requests=requests,
        rates=tuple(rates),
        cache_mb=cache_mb,
        n_plants=n_plants,
    )
    for variant in variants:
        result.points[variant] = [
            _run_point(
                variant,
                configs[variant],
                seed,
                memory_mb,
                requests,
                rate,
                hold_s,
                n_plants,
            )
            for rate in rates
        ]
    return result
