"""Load-driven provisioning-throughput experiment.

The paper measures creation latency one request at a time; a grid
portal in production sees an *arrival stream*.  This experiment
drives the simulated site open-loop — Poisson arrivals at a swept
rate, every request timed individually, finished VMs collected after
a hold period — and compares provisioning feature stacks:

* ``baseline`` — the paper's site, every clone pays the NFS path;
* ``cache`` — host-side golden-state LRU caches;
* ``cache+coalesce`` — plus in-flight transfer coalescing;
* ``cache+coalesce+pool`` — plus adaptive speculative pools.

Arrival times come from one named RNG stream, so every variant faces
bit-identical demand; only the provisioning machinery differs.

``streaming=True`` (CLI ``--streaming``) records latencies into a
constant-memory :class:`~repro.analysis.streaming.StreamSummary`
instead of a growing list: quantiles come from the sketch — within
its ``rel_err`` of the exact *nearest-rank* quantile (NumPy's
interpolated percentile can sit farther away at small sample counts)
— while the per-request ``fingerprint`` is computed incrementally
over the *same* byte layout, so it stays byte-identical to the
default path.  The default path — and therefore every recorded
golden — is untouched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError
from repro.provisioning import ProvisioningConfig
from repro.sim.cluster import build_testbed
from repro.workloads.requests import poisson_arrivals, request_stream

__all__ = [
    "VARIANTS",
    "LoadPoint",
    "LoadTestResult",
    "run_loadtest",
]


def _variant_configs(cache_mb: float) -> Dict[str, ProvisioningConfig]:
    return {
        "baseline": ProvisioningConfig(),
        "cache": ProvisioningConfig(host_cache_mb=cache_mb),
        "cache+coalesce": ProvisioningConfig(
            host_cache_mb=cache_mb, coalesce_transfers=True
        ),
        "cache+coalesce+pool": ProvisioningConfig(
            host_cache_mb=cache_mb,
            coalesce_transfers=True,
            speculative_pools=True,
        ),
    }


#: Feature stacks compared, in ablation order.
VARIANTS: Tuple[str, ...] = tuple(_variant_configs(512.0))


@dataclass(frozen=True)
class LoadPoint:
    """One (variant, arrival rate) measurement."""

    variant: str
    rate_per_s: float
    requests: int
    ok: int
    failed: int
    p50_s: float
    p95_s: float
    mean_s: float
    makespan_s: float
    creates_per_s: float
    nfs_mb: float
    cache_hits: int
    coalesced: int
    pool_hits: int
    #: SHA-256 over the per-request latencies (determinism checks).
    fingerprint: str

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "rate_per_s": self.rate_per_s,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "makespan_s": self.makespan_s,
            "creates_per_s": self.creates_per_s,
            "nfs_mb": self.nfs_mb,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "pool_hits": self.pool_hits,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LoadTestResult:
    """Full sweep: variant → points in increasing arrival rate."""

    seed: int
    memory_mb: int
    requests: int
    rates: Tuple[float, ...]
    cache_mb: float
    n_plants: int = 8
    points: Dict[str, List[LoadPoint]] = field(default_factory=dict)
    #: True when latencies were summarized by streaming sketches.
    streaming: bool = False
    #: Tracer ring size attached to each run (None = no tracer).
    trace_capacity: Optional[int] = None
    #: Trace events dropped by bounded tracers, over all points.
    trace_dropped: int = 0

    def point(self, variant: str, rate: float) -> LoadPoint:
        """The measurement for one (variant, rate) combination."""
        for p in self.points[variant]:
            if p.rate_per_s == rate:
                return p
        raise KeyError(f"no point for {variant!r} at rate {rate}")

    def speedup_at(self, rate: float) -> float:
        """Sustained-throughput ratio, full stack over baseline."""
        base = self.point("baseline", rate)
        full = self.point("cache+coalesce+pool", rate)
        return full.creates_per_s / base.creates_per_s

    def p95_improvement_at(self, rate: float) -> float:
        """p95 creation-latency ratio, baseline over full stack."""
        base = self.point("baseline", rate)
        full = self.point("cache+coalesce+pool", rate)
        return base.p95_s / full.p95_s

    def render(self) -> str:
        top = max(self.rates)
        lines = [
            "Extension: provisioning throughput under load "
            f"({self.requests} x {self.memory_mb} MB VMs, "
            f"{self.n_plants} plants, "
            f"Poisson arrivals, cache {self.cache_mb:.0f} MB/host)",
            "",
            f"{'variant':<20} {'rate/s':>7} {'ok':>4} {'p50 (s)':>8} "
            f"{'p95 (s)':>8} {'creates/s':>10} {'NFS MB':>8} "
            f"{'hits':>5} {'coal':>5} {'pool':>5}",
            "-" * 88,
        ]
        for variant, pts in self.points.items():
            for p in pts:
                lines.append(
                    f"{variant:<20} {p.rate_per_s:>7.2f} {p.ok:>4d} "
                    f"{p.p50_s:>8.1f} {p.p95_s:>8.1f} "
                    f"{p.creates_per_s:>10.3f} {p.nfs_mb:>8.0f} "
                    f"{p.cache_hits:>5d} {p.coalesced:>5d} "
                    f"{p.pool_hits:>5d}"
                )
        lines.append("-" * 88)
        lines.append(
            f"at {top:.2f} req/s the full stack sustains "
            f"{self.speedup_at(top):.1f}x the baseline creates/sec at "
            f"{self.p95_improvement_at(top):.1f}x lower p95 latency"
        )
        if self.streaming:
            lines.append(
                "latency summaries: streaming sketches "
                "(constant memory; quantiles within sketch rel_err)"
            )
        if self.trace_capacity is not None:
            lines.append(
                f"tracer: bounded to {self.trace_capacity} events; "
                f"{self.trace_dropped} dropped"
                + (
                    " (trace covers the tail of the run only)"
                    if self.trace_dropped
                    else ""
                )
            )
        return "\n".join(lines)


def _fingerprint(latencies: Sequence[float]) -> str:
    payload = ",".join(f"{v:.9f}" for v in latencies)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class _StreamingLatencies:
    """Constant-memory stand-in for the per-point latency list.

    Keeps a :class:`~repro.analysis.streaming.StreamSummary` plus an
    incremental SHA-256 over exactly the bytes
    ``",".join(f"{v:.9f}")`` — the :func:`_fingerprint` layout — so
    streaming and full-list runs report identical fingerprints.
    """

    __slots__ = ("summary", "_hash", "_first")

    def __init__(self) -> None:
        from repro.analysis.streaming import StreamSummary

        self.summary = StreamSummary()
        self._hash = hashlib.sha256()
        self._first = True

    def append(self, value: float) -> None:
        self.summary.add(value)
        if not self._first:
            self._hash.update(b",")
        self._hash.update(f"{value:.9f}".encode())
        self._first = False

    def fingerprint(self) -> str:
        return self._hash.hexdigest()[:16]


def _run_point(
    variant: str,
    config: ProvisioningConfig,
    seed: int,
    memory_mb: int,
    requests: int,
    rate: float,
    hold_s: float,
    n_plants: int,
    streaming: bool = False,
    trace_capacity: Optional[int] = None,
) -> Tuple[LoadPoint, int]:
    bed = build_testbed(seed=seed, n_plants=n_plants, provisioning=config)
    if trace_capacity is not None:
        from repro.sim.trace import Tracer

        bed.env.tracer = Tracer(capacity=trace_capacity)
    stream = request_stream(memory_mb, requests)
    # One shared stream name: every variant sees identical arrivals.
    times = poisson_arrivals(
        bed.rng, rate, requests, stream=f"loadtest/{rate}"
    )
    latencies = _StreamingLatencies() if streaming else []
    failures = [0]

    def one(at: float, request) -> Generator:
        yield bed.env.timeout(at)
        start = bed.env.now
        try:
            ad = yield from bed.shop.create(request)
        except ReproError:
            failures[0] += 1
            return
        latencies.append(bed.env.now - start)
        yield bed.env.timeout(hold_s)
        yield from bed.shop.destroy(str(ad["vmid"]))

    def client() -> Generator:
        procs = [
            bed.env.process(one(at, request))
            for at, request in zip(times, stream)
        ]
        yield bed.env.all_of(procs)

    start = bed.env.now
    bed.run(client())
    makespan = bed.env.now - start
    if streaming:
        summary = latencies.summary
        ok = summary.count
        p50 = summary.quantile(0.50)
        p95 = summary.quantile(0.95)
        mean = summary.mean
        fingerprint = latencies.fingerprint()
    else:
        sample = np.asarray(latencies, dtype=float)
        ok = int(sample.size)
        p50 = float(np.percentile(sample, 50)) if ok else float("nan")
        p95 = float(np.percentile(sample, 95)) if ok else float("nan")
        mean = float(sample.mean()) if ok else float("nan")
        fingerprint = _fingerprint(latencies)
    dropped = (
        bed.env.tracer.dropped if trace_capacity is not None else 0
    )
    return (
        LoadPoint(
            variant=variant,
            rate_per_s=rate,
            requests=requests,
            ok=ok,
            failed=failures[0],
            p50_s=p50,
            p95_s=p95,
            mean_s=mean,
            makespan_s=makespan,
            creates_per_s=ok / makespan if makespan > 0 else 0.0,
            nfs_mb=float(bed.nfs.mb_served),
            cache_hits=sum(
                h.state_cache.hits for h in bed.hosts if h.state_cache
            ),
            coalesced=bed.nfs.coalescer.requests_coalesced,
            pool_hits=sum(p.hits for p in bed.pools),
            fingerprint=fingerprint,
        ),
        dropped,
    )


def run_loadtest(
    seed: int = 2004,
    memory_mb: int = 64,
    requests: int = 64,
    rates: Sequence[float] = (0.05, 0.2, 1.2),
    cache_mb: float = 512.0,
    hold_s: float = 90.0,
    n_plants: int = 8,
    variants: Sequence[str] = VARIANTS,
    streaming: bool = False,
    trace_capacity: Optional[int] = None,
) -> LoadTestResult:
    """Sweep arrival rates across provisioning feature stacks.

    ``streaming`` summarizes latencies in constant memory (identical
    fingerprints, sketch-accurate quantiles); ``trace_capacity``
    attaches a bounded tracer to every run and reports how many
    events it dropped.  Both default off — the recorded goldens pin
    the default path.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    configs = _variant_configs(cache_mb)
    unknown = set(variants) - set(configs)
    if unknown:
        raise ValueError(f"unknown variants: {sorted(unknown)}")
    result = LoadTestResult(
        seed=seed,
        memory_mb=memory_mb,
        requests=requests,
        rates=tuple(rates),
        cache_mb=cache_mb,
        n_plants=n_plants,
        streaming=streaming,
        trace_capacity=trace_capacity,
    )
    for variant in variants:
        pts = []
        for rate in rates:
            point, dropped = _run_point(
                variant,
                configs[variant],
                seed,
                memory_mb,
                requests,
                rate,
                hold_s,
                n_plants,
                streaming,
                trace_capacity,
            )
            pts.append(point)
            result.trace_dropped += dropped
        result.points[variant] = pts
    return result
