"""Figure 4 — distribution of overall VM creation latencies.

End-to-end latency (client request → VMShop response) per successful
creation, binned into the paper's 5–85 s layout and normalized, one
series per golden-machine memory size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.histograms import FIG4_BIN_CENTERS, Histogram, histogram
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_histogram_table
from repro.experiments.runner import ExperimentRun, run_creation_suite

__all__ = ["Figure4Result", "run_figure4"]


@dataclass
class Figure4Result:
    """Reproduced Figure 4 data."""

    histograms: Dict[str, Histogram]
    summaries: Dict[str, Summary]
    runs: Dict[int, ExperimentRun]

    def render(self) -> str:
        """The figure as a paper-style table."""
        return render_histogram_table(
            "Figure 4: distribution of overall VM creation latencies "
            "(normalized frequency of occurrence)",
            self.histograms,
            x_label="overall latency (s)",
        )


def run_figure4(
    seed: int = 2004,
    suite: Optional[Dict[int, ExperimentRun]] = None,
) -> Figure4Result:
    """Reproduce Figure 4 (reusing a precomputed suite if given)."""
    runs = suite or run_creation_suite(seed=seed)
    histograms: Dict[str, Histogram] = {}
    summaries: Dict[str, Summary] = {}
    for memory in sorted(runs):
        label = f"{memory} MB"
        latencies = runs[memory].creation_latencies
        histograms[label] = histogram(latencies, FIG4_BIN_CENTERS)
        summaries[label] = summarize(latencies)
    return Figure4Result(
        histograms=histograms, summaries=summaries, runs=runs
    )
