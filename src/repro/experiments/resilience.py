"""Extension experiment: resilience to plant-side failures.

Section 3.1 designs the shop to be resilient — it holds no VM state
and can re-try other bidders.  This experiment injects clone (resume)
failures at a configurable rate and compares two shop policies:

* **surface** (the default, and what the paper's experiments report):
  a failed creation is returned to the client — the 121/128-style
  success counts;
* **retry** — the shop falls through to the next-best bid, turning
  plant-level failures into (slightly slower) successes.

Also exercises shop *restart* recovery under load: mid-stream, the
shop loses all soft state and rebuilds routing from the plants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.core.errors import ReproError
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request

__all__ = ["ResilienceResult", "run_resilience"]


@dataclass
class ResilienceResult:
    """Failure handling under both shop policies."""

    failure_prob: float
    requests: int
    #: policy → (successes, mean latency of successes).
    outcomes: Dict[str, tuple]
    #: VMs recovered by the shop-restart drill.
    recovered: int

    def render(self) -> str:
        lines = [
            "Extension: shop resilience "
            f"({self.requests} requests, {self.failure_prob:.0%} clone-"
            "failure injection, 4 plants)",
            "",
            f"{'policy':>10} {'successes':>10} {'mean latency (s)':>17}",
            "-" * 40,
        ]
        for policy, (ok, latency) in self.outcomes.items():
            lines.append(
                f"{policy:>10} {ok:>6d}/{self.requests:<3d} "
                f"{latency:>17.1f}"
            )
        lines.append("-" * 40)
        lines.append(
            f"shop restart drill: routing for {self.recovered} active "
            "VMs rebuilt from plant information systems"
        )
        return "\n".join(lines)


def run_resilience(
    seed: int = 2004,
    requests: int = 24,
    failure_prob: float = 0.25,
) -> ResilienceResult:
    """Run the failure-injection comparison plus the restart drill."""
    outcomes: Dict[str, tuple] = {}
    recovered = 0
    for policy, retry in (("surface", False), ("retry", True)):
        bed = build_testbed(
            seed=seed,
            n_plants=4,
            clone_failure_prob=failure_prob,
            retry_other_plants=retry,
        )
        latencies: List[float] = []
        failures = 0

        def client() -> Generator:
            nonlocal failures, recovered
            for i in range(requests):
                start = bed.env.now
                try:
                    yield from bed.shop.create(experiment_request(32))
                except ReproError:
                    failures += 1
                    continue
                latencies.append(bed.env.now - start)
                if retry and i == requests // 2:
                    # Restart drill: drop all shop soft state.
                    bed.shop._route.clear()
                    bed.shop._cache.clear()
                    recovered = bed.shop.recover()

        bed.run(client())
        mean = float(np.mean(latencies)) if latencies else float("nan")
        outcomes[policy] = (requests - failures, mean)
    return ResilienceResult(
        failure_prob=failure_prob,
        requests=requests,
        outcomes=outcomes,
        recovered=recovered,
    )
