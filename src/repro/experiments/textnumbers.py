"""The in-text numbers of Sections 1 and 4.3.

* "efficient cloning allows a VMware-based VMPlant prototype to
  achieve VM creation in 17 to 85 seconds";
* "VMs to be instantiated, on average, in 25 to 48 seconds";
* "the virtual disk of the golden machine … occupies 2 GBytes of
  storage (spanned across 16 files) and takes 210 seconds to be fully
  copied — around 4 times slower than the average cloning time of the
  256 MB VM".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.experiments.runner import (
    ExperimentRun,
    run_creation_experiment,
    run_creation_suite,
)
from repro.plant.production import CloneMode

__all__ = ["TextNumbersResult", "run_textnumbers"]


@dataclass
class TextNumbersResult:
    """Measured counterparts of the paper's prose claims."""

    creation_min: float
    creation_max: float
    mean_by_memory: Dict[int, float]
    clone_mean_256: float
    full_copy_clone_time: float
    copy_over_clone_ratio: float
    runs: Dict[int, ExperimentRun]

    def render(self) -> str:
        """Claim-by-claim comparison table."""
        means = ", ".join(
            f"{m}MB={v:.1f}s" for m, v in sorted(self.mean_by_memory.items())
        )
        lines = [
            "In-text numbers (paper vs. measured)",
            "",
            f"{'claim':<44} {'paper':>12} {'measured':>12}",
            "-" * 70,
            f"{'creation range (s)':<44} {'17 - 85':>12} "
            f"{f'{self.creation_min:.0f} - {self.creation_max:.0f}':>12}",
            f"{'creation averages (s)':<44} {'25 - 48':>12} "
            f"{f'{min(self.mean_by_memory.values()):.0f} - {max(self.mean_by_memory.values()):.0f}':>12}",
            f"{'full 2GB disk copy (s)':<44} {'210':>12} "
            f"{self.full_copy_clone_time:>12.0f}",
            f"{'copy / 256MB-clone ratio':<44} {'~4x':>12} "
            f"{f'{self.copy_over_clone_ratio:.1f}x':>12}",
            "-" * 70,
            f"per-size creation means: {means}",
        ]
        return "\n".join(lines)


def run_textnumbers(
    seed: int = 2004,
    suite: Optional[Dict[int, ExperimentRun]] = None,
) -> TextNumbersResult:
    """Measure every prose claim of Section 4.3."""
    runs = suite or run_creation_suite(seed=seed)
    all_latencies = [
        lat for run in runs.values() for lat in run.creation_latencies
    ]
    mean_by_memory = {
        memory: float(np.mean(run.creation_latencies))
        for memory, run in runs.items()
    }
    clone_mean_256 = float(np.mean(runs[256].clone_times))

    # One full-disk COPY clone of the 256 MB golden machine on a fresh
    # testbed (the paper's 210 s comparison point).
    copy_run = run_creation_experiment(
        256, 1, seed=seed + 999, clone_mode=CloneMode.COPY
    )
    # The paper's 210 s is the disk copy itself; the clone record's
    # copy phase is the equivalent measurement.
    full_copy_clone_time = copy_run.clone_records()[0].copy_time

    return TextNumbersResult(
        creation_min=float(np.min(all_latencies)),
        creation_max=float(np.max(all_latencies)),
        mean_by_memory=mean_by_memory,
        clone_mean_256=clone_mean_256,
        full_copy_clone_time=full_copy_clone_time,
        copy_over_clone_ratio=full_copy_clone_time / clone_mean_256,
        runs=runs,
    )
