"""Extension experiment: migrating active VMs across plants (§6).

Two measurements:

* **migration latency vs. memory size** — suspend + state transfer
  over the gigabit inter-node link + resume, for the paper's three
  golden-machine sizes;
* **rebalancing** — a plant overloaded with clones (deep memory
  pressure) sheds half of them to an idle plant; host pressure drops
  on the source, directly improving subsequent cloning there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.plant.migration import MigrationManager
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request

__all__ = ["MigrationResult", "run_migration"]


@dataclass
class MigrationResult:
    """Measured migration behaviour."""

    #: memory size → mean migration time (s).
    latency_by_memory: Dict[int, float]
    #: source-host pressure factor before/after rebalancing.
    pressure_before: float
    pressure_after: float
    #: clone time on the overloaded source before/after rebalancing.
    clone_before: float
    clone_after: float

    def render(self) -> str:
        lines = [
            "Extension: migration of active VMs across plants (§6 "
            "future work)",
            "",
            f"{'memory (MB)':>12} {'migration time (s)':>19}",
            "-" * 33,
        ]
        for memory in sorted(self.latency_by_memory):
            lines.append(
                f"{memory:>12d} "
                f"{self.latency_by_memory[memory]:>19.1f}"
            )
        lines.append("-" * 33)
        lines.append(
            f"rebalancing 16 -> 8 clones: source pressure "
            f"{self.pressure_before:.2f} -> {self.pressure_after:.2f}, "
            f"clone time {self.clone_before:.1f}s -> "
            f"{self.clone_after:.1f}s"
        )
        return "\n".join(lines)


def run_migration(seed: int = 2004) -> MigrationResult:
    """Run both migration measurements."""
    latency_by_memory: Dict[int, float] = {}
    for memory in (32, 64, 256):
        bed = build_testbed(seed=seed, n_plants=2)
        manager = MigrationManager(bed.env, link=bed.internode)
        src, dst = bed.plants
        bed.run(src.create(experiment_request(memory), "mig-vm"))
        start = bed.env.now
        bed.run(manager.migrate(src, dst, "mig-vm"))
        latency_by_memory[memory] = bed.env.now - start

    # Rebalancing: overload plant0 with 16 x 64 MB clones
    # (the Figure 6 pressure regime).
    bed = build_testbed(seed=seed, n_plants=2)
    manager = MigrationManager(bed.env, link=bed.internode)
    src, dst = bed.plants

    def load() -> Generator:
        for i in range(16):
            yield from src.create(experiment_request(64), f"vm{i}")

    bed.run(load())
    pressure_before = bed.hosts[0].pressure_factor()
    clone_before = bed.lines["vmware"][0].clone_records[-1].total_time

    def rebalance() -> Generator:
        for i in range(8):
            yield from manager.migrate(src, dst, f"vm{i}")

    bed.run(rebalance())
    pressure_after = bed.hosts[0].pressure_factor()

    # One more clone on the relieved source plant.
    bed.run(src.create(experiment_request(64), "vm-post"))
    clone_after = bed.lines["vmware"][0].clone_records[-1].total_time

    return MigrationResult(
        latency_by_memory=latency_by_memory,
        pressure_before=pressure_before,
        pressure_after=pressure_after,
        clone_before=clone_before,
        clone_after=clone_after,
    )
