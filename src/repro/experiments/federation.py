"""Federation sweep: control-plane throughput vs grid size.

Runs the ``federation`` scenario — N federated sites, each a full
paper testbed behind rack brokers and a spill gateway, one site per
kernel shard — across a grid of (site count × cross-site traffic
fraction) and reports the control-plane numbers the federation story
hangs on:

* ``agg bids/s`` — bid-collection rounds' individual bids gathered
  per shard CPU-second, summed over shards.  Registries, brokers and
  vnet blocks are all site-local, so this scales with the site count
  (the sharded-control-plane claim) regardless of how many cores the
  host happens to have free.
* ``create p95`` — 95th-percentile request completion latency
  (simulated seconds), local and spilled placements together; the
  price of crossing a WAN boundary shows up here as the cross-site
  fraction grows.

The determinism recheck pins the merged-trace fingerprint of the
largest swept grid at 1 shard vs one-shard-per-site vs a repeat.

Scaling rungs (sites × plants/site × requests/site)::

    vmplants federation                              # 1/4/16 sites, smoke
    vmplants federation --sites 16 --plants 625 \\
        --requests-per-site 160 --spill-deadline 2500   # 10k plants
    vmplants federation --sites 64 --requests-per-site 15625
                                                     # 1M requests

(At 625-plant sites the arrival burst pushes create latency near 700
simulated seconds, so the spill deadline — a policy knob defaulting
to 400 — must be raised for cross-site acks to beat it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.shard import ShardedTestbed

__all__ = [
    "FederationPoint",
    "FederationResult",
    "run_federation",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(
        0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1)
    )
    return ordered[rank]


@dataclass(frozen=True)
class FederationPoint:
    """One timed run at a given (sites, cross_fraction)."""

    sites: int
    shards: int
    cross_fraction: float
    plants: int
    events: int
    wall_s: float
    cpu_s: float
    agg_events_per_sec: float
    bids: int
    agg_bids_per_sec: float
    created: int
    destroyed: int
    failed: int
    spills_sent: int
    spilled_ok: int
    spill_timeout: int
    p50_latency_s: float
    p95_latency_s: float

    def as_dict(self) -> dict:
        return {
            "sites": self.sites,
            "shards": self.shards,
            "cross_fraction": self.cross_fraction,
            "plants": self.plants,
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "cpu_s": round(self.cpu_s, 4),
            "agg_events_per_sec": round(self.agg_events_per_sec, 1),
            "bids": self.bids,
            "agg_bids_per_sec": round(self.agg_bids_per_sec, 2),
            "created": self.created,
            "destroyed": self.destroyed,
            "failed": self.failed,
            "spills_sent": self.spills_sent,
            "spilled_ok": self.spilled_ok,
            "spill_timeout": self.spill_timeout,
            "p50_latency_s": round(self.p50_latency_s, 2),
            "p95_latency_s": round(self.p95_latency_s, 2),
        }


@dataclass
class FederationResult:
    """Full sweep plus the determinism recheck."""

    seed: int
    site_counts: Tuple[int, ...]
    cross_fractions: Tuple[float, ...]
    params: Dict[str, Any]
    points: List[FederationPoint] = field(default_factory=list)
    #: shard count -> merged-trace fingerprint (largest grid).
    fingerprints: Dict[int, str] = field(default_factory=dict)
    repeat_fingerprint: str = ""

    @property
    def deterministic(self) -> bool:
        fps = set(self.fingerprints.values())
        return len(fps) == 1 and self.repeat_fingerprint in fps

    def point(
        self, sites: int, cross_fraction: float
    ) -> FederationPoint:
        for p in self.points:
            if p.sites == sites and p.cross_fraction == cross_fraction:
                return p
        raise KeyError(
            f"no point for sites={sites} cross={cross_fraction}"
        )

    def bids_speedup(
        self, sites: int, cross_fraction: Optional[float] = None
    ) -> float:
        """Aggregate bids/sec ratio vs the 1-site run (same fraction)."""
        cf = (
            cross_fraction
            if cross_fraction is not None
            else self.cross_fractions[0]
        )
        base = self.point(1, cf).agg_bids_per_sec if 1 in self.site_counts \
            else 0.0
        return (
            self.point(sites, cf).agg_bids_per_sec / base if base else 0.0
        )

    def render(self) -> str:
        prm = self.params
        lines = [
            "Extension: federated multi-site control plane "
            f"({prm['plants']} plants/site x {prm['requests']} "
            f"requests/site, rate {prm['rate_per_s']:.1f}/s, "
            f"rack size {prm['rack_size']}, "
            f"WAN lookahead {prm['link_latency_s']:.0f}s)",
            "",
            f"{'sites':>5} {'cross':>6} {'plants':>6} {'created':>8} "
            f"{'spilled':>8} {'bids':>8} {'agg bids/s':>11} "
            f"{'speedup':>8} {'p95 (s)':>8}",
            "-" * 78,
        ]
        for p in self.points:
            lines.append(
                f"{p.sites:>5d} {p.cross_fraction:>6.2f} "
                f"{p.plants:>6d} {p.created:>8d} {p.spilled_ok:>8d} "
                f"{p.bids:>8d} {p.agg_bids_per_sec:>11.0f} "
                f"{self.bids_speedup(p.sites, p.cross_fraction):>7.2f}x "
                f"{p.p95_latency_s:>8.1f}"
            )
        lines.append("-" * 78)
        fps = sorted(set(self.fingerprints.values()))
        if self.deterministic:
            lines.append(
                f"determinism: merged-trace fingerprint {fps[0][:16]} "
                f"identical at shard counts {sorted(self.fingerprints)} "
                f"and across repeats"
            )
        else:
            lines.append(
                "determinism: FAILED — fingerprints "
                f"{ {k: v[:16] for k, v in self.fingerprints.items()} } "
                f"repeat {self.repeat_fingerprint[:16]}"
            )
        return "\n".join(lines)

    def to_record(self) -> dict:
        return {
            "seed": self.seed,
            "site_counts": list(self.site_counts),
            "cross_fractions": list(self.cross_fractions),
            "params": {k: v for k, v in sorted(self.params.items())},
            "points": [p.as_dict() for p in self.points],
            "bids_speedups": {
                f"{s}x{cf:g}": round(self.bids_speedup(s, cf), 2)
                for s in self.site_counts
                for cf in self.cross_fractions
            },
            "deterministic": self.deterministic,
            "fingerprint": next(iter(self.fingerprints.values()), ""),
        }


def _site_bids(run) -> Dict[int, int]:
    return {
        r["site"]: int(r["stats"].get("bids_collected", 0))
        for r in run.site_results
    }


def _agg_bids_per_sec(run) -> float:
    """Sum over shards of (its sites' bids / its CPU-seconds)."""
    bids = _site_bids(run)
    total = 0.0
    for s in run.shard_results:
        if s["cpu_s"] > 0:
            total += sum(bids[site] for site in s["sites"]) / s["cpu_s"]
    return total


def run_federation(
    seed: int = 2004,
    site_counts: Sequence[int] = (1, 4, 16),
    cross_fractions: Sequence[float] = (0.0, 0.1, 0.3),
    plants_per_site: int = 8,
    requests_per_site: int = 160,
    params: Optional[Dict[str, Any]] = None,
    determinism_requests: int = 20,
    deadline_s: Optional[float] = 600.0,
) -> FederationResult:
    """Sweep (site count × cross-site fraction); recheck determinism.

    Every timing run uses one shard per site (``shards = sites``) so
    the aggregate bids/sec measures per-site control-plane rate
    summed across shards, not core count.  Timing runs disable
    tracing; the determinism recheck reruns the largest grid small at
    1 shard, ``sites`` shards and a repeat with fingerprints on.
    """
    site_counts = tuple(site_counts)
    cross_fractions = tuple(cross_fractions)
    if not site_counts or min(site_counts) < 1:
        raise ValueError("site_counts must be positive")
    prm: Dict[str, Any] = {
        "plants": plants_per_site,
        "requests": requests_per_site,
    }
    prm.update(params or {})

    result = FederationResult(
        seed=seed,
        site_counts=site_counts,
        cross_fractions=cross_fractions,
        params={},
    )
    for sites in site_counts:
        for cf in cross_fractions:
            run_prm = dict(prm)
            run_prm["cross_fraction"] = cf
            plan = ShardedTestbed(
                seed=seed,
                sites=sites,
                shards=sites,
                scenario="federation",
            )
            run = plan.run(
                params=run_prm, collect=None, deadline_s=deadline_s
            )
            result.params = run.params
            stats = run.combined_stats()
            latencies: List[float] = []
            for r in run.site_results:
                latencies.extend(r["stats"].get("latencies", ()))
            result.points.append(
                FederationPoint(
                    sites=sites,
                    shards=sites,
                    cross_fraction=cf,
                    plants=sites * run.params["plants"],
                    events=run.total_events,
                    wall_s=run.wall_s,
                    cpu_s=sum(
                        s["cpu_s"] for s in run.shard_results
                    ),
                    agg_events_per_sec=run.agg_events_per_sec,
                    bids=int(stats.get("bids_collected", 0)),
                    agg_bids_per_sec=_agg_bids_per_sec(run),
                    created=int(stats.get("created", 0)),
                    destroyed=int(stats.get("destroyed", 0)),
                    failed=int(stats.get("failed", 0)),
                    spills_sent=int(stats.get("spills_sent", 0)),
                    spilled_ok=int(stats.get("spilled_ok", 0)),
                    spill_timeout=int(stats.get("spill_timeout", 0)),
                    p50_latency_s=percentile(latencies, 50.0),
                    p95_latency_s=percentile(latencies, 95.0),
                )
            )

    det_sites = max(site_counts)
    det_prm = dict(prm)
    det_prm["requests"] = min(determinism_requests, requests_per_site)
    det_prm["cross_fraction"] = (
        cross_fractions[-1] if cross_fractions else 0.1
    )
    det_counts = sorted({1, det_sites})
    for shards in det_counts:
        plan = ShardedTestbed(
            seed=seed,
            sites=det_sites,
            shards=shards,
            scenario="federation",
        )
        run = plan.run(
            params=det_prm, collect="fingerprint", deadline_s=deadline_s
        )
        result.fingerprints[shards] = run.fingerprint()
    plan = ShardedTestbed(
        seed=seed,
        sites=det_sites,
        shards=det_counts[-1],
        scenario="federation",
    )
    run = plan.run(
        params=det_prm, collect="fingerprint", deadline_s=deadline_s
    )
    result.repeat_fingerprint = run.fingerprint()
    return result
