"""Parallel experiment fan-out with a deterministic merge.

The SC'04 evaluation is embarrassingly parallel: every creation
stream, ablation and extension experiment builds its own seeded
testbed, so independent runs never share mutable state.  This module
fans such runs out across a :mod:`concurrent.futures` process pool
and merges the results **in submission order**, which makes parallel
execution bit-identical to sequential execution — the only thing that
changes is wall-clock time.

Three layers of API:

* :class:`Job` + :func:`run_jobs` — the generic primitive: a keyed
  list of (picklable) callables, executed serially or on a pool,
  returned as a ``{key: result}`` dict in submission order;
* :func:`parallel_map` — positional convenience over ``run_jobs``;
* :func:`run_seed_sweep` — multi-seed replication of one experiment.

Results that own a live testbed (an :class:`~repro.experiments.
runner.ExperimentRun`) are detached in the worker before crossing the
process boundary; see :meth:`ExperimentRun.detach`.

Workers default to ``os.cpu_count()`` and can be pinned with the
``REPRO_MAX_WORKERS`` environment variable.  On a single-core host
(or for a single job) ``mode="auto"`` falls back to in-process serial
execution, avoiding pool overhead where it cannot pay off.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Job",
    "run_jobs",
    "parallel_map",
    "run_seed_sweep",
    "default_workers",
    "rendered",
]


@dataclass(frozen=True)
class Job:
    """One unit of fan-out work: ``fn(**kwargs)`` labelled by ``key``."""

    key: Any
    fn: Callable
    kwargs: Dict[str, Any] = field(default_factory=dict)


def default_workers() -> int:
    """Worker-pool width: ``REPRO_MAX_WORKERS`` or the CPU count."""
    override = os.environ.get("REPRO_MAX_WORKERS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _detached(result: Any) -> Any:
    """Make ``result`` safe to pickle back to the parent process."""
    detach = getattr(result, "detach", None)
    if callable(detach):
        return detach()
    return result


def _worker(fn: Callable, kwargs: Dict[str, Any]) -> Any:
    """Top-level pool entry point (must be importable for pickling)."""
    return _detached(fn(**kwargs))


def run_jobs(
    jobs: Sequence[Job],
    mode: str = "auto",
    max_workers: Optional[int] = None,
) -> Dict[Any, Any]:
    """Run ``jobs`` and return ``{job.key: result}`` in submission order.

    ``mode`` is ``"serial"`` (in-process, results keep live testbeds),
    ``"process"`` (pool of worker processes, results are detached), or
    ``"auto"`` (process pool when it can help: more than one job and
    more than one usable worker).  The merge is deterministic: results
    are collected future-by-future in submission order, so completion
    order never leaks into the returned dict.
    """
    jobs = list(jobs)
    if mode not in ("auto", "serial", "process"):
        raise ValueError(f"unknown mode {mode!r}")
    keys = [job.key for job in jobs]
    if len(set(keys)) != len(keys):
        raise ValueError("job keys must be unique")

    workers = max_workers if max_workers is not None else default_workers()
    workers = max(1, min(int(workers), len(jobs) or 1))
    if mode == "auto":
        mode = "process" if workers > 1 and len(jobs) > 1 else "serial"

    if mode == "serial" or not jobs:
        return {job.key: job.fn(**job.kwargs) for job in jobs}

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            (job.key, pool.submit(_worker, job.fn, job.kwargs))
            for job in jobs
        ]
        return {key: future.result() for key, future in futures}


def parallel_map(
    fn: Callable,
    kwargs_list: Iterable[Dict[str, Any]],
    mode: str = "auto",
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Apply ``fn`` to each kwargs dict; results in input order."""
    jobs = [
        Job(key=index, fn=fn, kwargs=kwargs)
        for index, kwargs in enumerate(kwargs_list)
    ]
    results = run_jobs(jobs, mode=mode, max_workers=max_workers)
    return [results[index] for index in range(len(jobs))]


def rendered(fn: Callable, **kwargs: Any) -> str:
    """Run ``fn(**kwargs)`` and return its ``render()`` string.

    Fan-out helper for report sections whose result objects hold live
    testbeds (and so cannot cross a process boundary themselves): the
    rendering happens in the worker, only text comes back.
    """
    return fn(**kwargs).render()


def run_seed_sweep(
    fn: Callable,
    seeds: Sequence[int],
    mode: str = "auto",
    max_workers: Optional[int] = None,
    **kwargs: Any,
) -> Dict[int, Any]:
    """Replicate one experiment across ``seeds``; keyed by seed."""
    jobs = [
        Job(key=seed, fn=fn, kwargs={**kwargs, "seed": seed})
        for seed in seeds
    ]
    return run_jobs(jobs, mode=mode, max_workers=max_workers)
