"""Megachaos: grid-scale faults composed with flash-crowd traces.

The graceful-degradation experiment the robustness story hangs on: a
deterministic :func:`~repro.faults.plan.grid_fault_plan` (single-site
blackout, optional WAN partition and background host crashes) runs
*inside* the sharded ``megaload`` scenario while its multi-tenant
trace — including the flash crowd — plays out, and the same plan is
replayed against each rung of the **grid resilience ladder**:

* ``none``      — no faults (the baseline the trace can reach);
* ``faults``    — the plan fires, nothing compensates: arrivals at a
  dark site fail fast, spills into it vanish;
* ``failover``  — plus the gateway failover ladder: dark-site
  arrivals reroute over the spill ring, failed/timed-out spills
  retry with backoff, and the home site is a last-resort fallback;
* ``admission`` — plus overload admission control: priority-tiered
  load shedding and pool preemption at the gateways.

Every rung sees bit-identical arrivals (the traces are pure functions
of ``(seed, site, params)``) and a bit-identical fault schedule (one
recorded plan), so the availability ladder measures *policy*, not
luck.  Availability is ``(arrivals - failed) / arrivals`` — the
fraction of offered requests that did not end in failure.  A shed
request is an immediate, deterministic decline by explicit policy
(not a timeout or an error), so it does not count against
availability; it is accounted separately and the identity
``arrivals = ok + failed + shed`` must hold exactly on every rung.
The per-tenant fairness tests and the shed column keep this honest —
a ladder that "wins" by shedding everything is visible at a glance.

Each rung ends with the six-dimension leak audit at grid scope
(summed across every site's testbed), and the determinism recheck
reruns the *full* ladder rung — faults, failover and admission all
enabled — at 1/2/4 shards: merged-trace fingerprints and merged
``WorkloadSummary.state_signature()`` must be identical, extending
the PR 6 contract to chaos.  ``to_records`` carries the recorded
plan and full config, so ``vmplants megachaos --replay`` reproduces
the report bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan, grid_fault_plan
from repro.sim.shard import ShardedTestbed

__all__ = [
    "LADDER",
    "MegaChaosPoint",
    "MegaChaosResult",
    "run_megachaos",
]

#: The grid resilience ladder, weakest first.  Availability over the
#: three faulted rungs must be non-decreasing.
LADDER: Tuple[str, ...] = ("none", "faults", "failover", "admission")

#: Default tenant priority tiers for the admission rung: interactive
#: users outrank batch campaigns outrank the flash crowd.
DEFAULT_PRIORITIES: Dict[str, int] = {
    "interactive": 0,
    "batch": 1,
    "crowd": 2,
}


@dataclass(frozen=True)
class MegaChaosPoint:
    """One rung of the resilience ladder."""

    rung: str
    shards: int
    arrivals: int
    ok: int
    failed: int
    shed: int
    preempted: int
    deadline_miss: int
    spilled_ok: int
    spill_retries: int
    spill_timeout: int
    spills_dropped: int
    local_fallbacks: int
    faults_applied: int
    faults_skipped: int
    #: (arrivals - failed) / arrivals: fraction of offered requests
    #: that did not end in failure.  A shed request is a deterministic
    #: policy decline, not a failure, and is tallied separately.
    availability: float
    goodput_per_s: float
    makespan_s: float
    #: Residual grid-scope resources at drain; all zero when clean.
    leaks: Dict[str, float]
    summary_signature: str

    @property
    def leaked(self) -> bool:
        return any(v != 0 for v in self.leaks.values())

    @property
    def accounted(self) -> bool:
        """Every arrival ended as ok, failed or shed."""
        return self.arrivals == self.ok + self.failed + self.shed

    def as_dict(self) -> dict:
        return {
            "rung": self.rung,
            "shards": self.shards,
            "arrivals": self.arrivals,
            "ok": self.ok,
            "failed": self.failed,
            "shed": self.shed,
            "preempted": self.preempted,
            "deadline_miss": self.deadline_miss,
            "spilled_ok": self.spilled_ok,
            "spill_retries": self.spill_retries,
            "spill_timeout": self.spill_timeout,
            "spills_dropped": self.spills_dropped,
            "local_fallbacks": self.local_fallbacks,
            "faults_applied": self.faults_applied,
            "faults_skipped": self.faults_skipped,
            "availability": round(self.availability, 6),
            "goodput_per_s": round(self.goodput_per_s, 6),
            "makespan_s": round(self.makespan_s, 6),
            "leaks": dict(self.leaks),
            "summary_signature": self.summary_signature,
            "accounted": self.accounted,
        }


@dataclass
class MegaChaosResult:
    """The full ladder plus determinism recheck and replay record."""

    #: Everything needed to reproduce the run (the replay artifact).
    config: Dict[str, Any]
    #: The recorded grid fault plan (site-tagged events).
    plan_records: List[dict] = field(default_factory=list)
    plan_signature: str = ""
    points: List[MegaChaosPoint] = field(default_factory=list)
    #: shard count -> merged-trace fingerprint (full ladder rung).
    fingerprints: Dict[int, str] = field(default_factory=dict)
    #: shard count -> merged summary signature (full ladder rung).
    det_signatures: Dict[int, str] = field(default_factory=dict)
    repeat_fingerprint: str = ""

    def point(self, rung: str) -> MegaChaosPoint:
        for p in self.points:
            if p.rung == rung:
                return p
        raise KeyError(f"no point for rung {rung!r}")

    def availability_ladder(self) -> List[float]:
        return [p.availability for p in self.points]

    @property
    def ladder_monotone(self) -> bool:
        """Availability non-decreasing over the faulted rungs."""
        faulted = [
            p.availability
            for p in self.points
            if p.rung != "none"
        ]
        return all(
            b >= a for a, b in zip(faulted, faulted[1:])
        )

    @property
    def deterministic(self) -> bool:
        fps = set(self.fingerprints.values())
        sigs = set(self.det_signatures.values())
        return (
            len(fps) == 1
            and self.repeat_fingerprint in fps
            and len(sigs) == 1
        )

    @property
    def leaked(self) -> bool:
        return any(p.leaked for p in self.points)

    def to_records(self) -> dict:
        """JSON-ready report (``vmplants megachaos --report``).

        Deliberately excludes wall-clock and RSS numbers: a replayed
        run must reproduce this record *bit-identically*.
        """
        return {
            "config": {
                k: v for k, v in sorted(self.config.items())
            },
            "plan": {
                "signature": self.plan_signature,
                "records": list(self.plan_records),
            },
            "points": [p.as_dict() for p in self.points],
            "fingerprints": {
                str(k): v for k, v in sorted(self.fingerprints.items())
            },
            "det_signatures": {
                str(k): v
                for k, v in sorted(self.det_signatures.items())
            },
            "repeat_fingerprint": self.repeat_fingerprint,
            "ladder_monotone": self.ladder_monotone,
            "deterministic": self.deterministic,
            "leaked": self.leaked,
        }

    def render(self) -> str:
        cfg = self.config
        lines = [
            "Extension: grid resilience ladder under a site blackout "
            f"({cfg['sites']} sites x {cfg['requests_per_site']} "
            f"requests/site, blackout site {cfg['blackout_site']} "
            f"at t={cfg['blackout_at']:g}s for "
            f"{cfg['blackout_s']:g}s; plan "
            f"{self.plan_signature[:16]})",
            "",
            f"{'rung':<10} {'ok':>6} {'fail':>5} {'shed':>5} "
            f"{'avail':>7} {'goodput/s':>10} {'retries':>8} "
            f"{'dropped':>8} {'fallback':>9} {'faults':>7} "
            f"{'skip':>5} {'leaks':>6}",
            "-" * 96,
        ]
        for p in self.points:
            lines.append(
                f"{p.rung:<10} {p.ok:>6d} {p.failed:>5d} "
                f"{p.shed:>5d} {p.availability:>7.3f} "
                f"{p.goodput_per_s:>10.4f} {p.spill_retries:>8d} "
                f"{p.spills_dropped:>8d} {p.local_fallbacks:>9d} "
                f"{p.faults_applied:>7d} {p.faults_skipped:>5d} "
                f"{'LEAK' if p.leaked else 'none':>6}"
            )
        lines.append("-" * 96)
        faulted = [p for p in self.points if p.rung != "none"]
        arrow = " <= ".join(f"{p.availability:.3f}" for p in faulted)
        lines.append(
            "availability ladder "
            f"({' -> '.join(p.rung for p in faulted)}): {arrow}"
            f"{'' if self.ladder_monotone else '  [NOT MONOTONE]'}"
        )
        fps = sorted(set(self.fingerprints.values()))
        if self.deterministic:
            lines.append(
                "determinism: fingerprint "
                f"{fps[0][:16]} and summary signature "
                f"{next(iter(self.det_signatures.values()))[:16]} "
                f"identical at shard counts "
                f"{sorted(self.fingerprints)} with faults + "
                f"admission enabled"
            )
        else:
            lines.append(
                "determinism: FAILED — fingerprints "
                f"{ {k: v[:16] for k, v in self.fingerprints.items()} } "
                f"signatures "
                f"{ {k: v[:16] for k, v in self.det_signatures.items()} }"
            )
        return "\n".join(lines)


def _rung_params(
    rung: str, base: Dict[str, Any], cfg: Dict[str, Any],
    plan_records: List[dict],
) -> Dict[str, Any]:
    """The scenario params one ladder rung runs with."""
    prm = dict(base)
    if rung == "none":
        return prm
    prm["fault_plan"] = plan_records
    if rung in ("failover", "admission"):
        prm["spill_attempts"] = cfg["spill_attempts"]
        prm["spill_backoff_s"] = cfg["spill_backoff_s"]
        prm["local_fallback"] = True
        prm["reroute_on_blackout"] = True
    if rung == "admission":
        prm["shed_depth"] = cfg["shed_depth"]
        prm["preempt_depth"] = cfg["preempt_depth"]
        prm["priorities"] = dict(DEFAULT_PRIORITIES)
    return prm


def run_megachaos(
    seed: int = 2004,
    sites: int = 4,
    shards: int = 4,
    requests_per_site: int = 150,
    params: Optional[Dict[str, Any]] = None,
    blackout_site: int = 1,
    blackout_at: float = 110.0,
    blackout_s: float = 60.0,
    crash_plants_per_site: int = 0,
    mtbf_s: float = 600.0,
    mttr_s: float = 60.0,
    wan_site: Optional[int] = None,
    wan_at: Optional[float] = None,
    wan_s: float = 30.0,
    wan_severity: float = 0.0,
    spill_attempts: int = 3,
    spill_backoff_s: float = 20.0,
    shed_depth: Optional[int] = 240,
    preempt_depth: Optional[int] = 160,
    det_shard_counts: Sequence[int] = (1, 2, 4),
    determinism_requests: int = 40,
    deadline_s: Optional[float] = 1800.0,
    trace_capacity: Optional[int] = 100_000,
    plan_records: Optional[List[dict]] = None,
) -> MegaChaosResult:
    """Run the resilience ladder over one grid fault plan.

    ``plan_records`` (the ``plan.records`` section of a saved report)
    bypasses plan generation — the replay path.  The blackout is a
    single fixed-time event; background host crashes
    (``crash_plants_per_site`` per site) and the optional WAN
    partition (``wan_site``'s spill link) come from the same seeded
    plan.  The determinism recheck runs the *admission* rung — every
    knob on at once — across ``det_shard_counts``.
    """
    if not 0 <= blackout_site < sites:
        raise ValueError("blackout_site out of range")
    if shards > sites:
        raise ValueError("shards cannot exceed sites")
    cfg: Dict[str, Any] = {
        "seed": seed,
        "sites": sites,
        "shards": shards,
        "requests_per_site": requests_per_site,
        "blackout_site": blackout_site,
        "blackout_at": blackout_at,
        "blackout_s": blackout_s,
        "crash_plants_per_site": crash_plants_per_site,
        "mtbf_s": mtbf_s,
        "mttr_s": mttr_s,
        "wan_site": wan_site,
        "wan_at": wan_at,
        "wan_s": wan_s,
        "wan_severity": wan_severity,
        "spill_attempts": spill_attempts,
        "spill_backoff_s": spill_backoff_s,
        "shed_depth": shed_depth,
        "preempt_depth": preempt_depth,
        "det_shard_counts": list(det_shard_counts),
        "determinism_requests": determinism_requests,
        "extra_params": {
            k: v for k, v in sorted((params or {}).items())
        },
    }

    base: Dict[str, Any] = {
        "requests": requests_per_site,
        # Chaos runs want the ladder visible inside the trace span:
        # a tighter spill deadline than the federation default so a
        # dead WAN peer costs seconds, not the whole run.
        "spill_deadline_s": 120.0,
        # Oversubscribe the grid: heavier VMs and a 30% flash crowd
        # landing inside the default blackout window (t=110..170 vs
        # the crowd's t=120 burst), so the faults rung visibly
        # bleeds and admission has real congestion to shed.
        "memory_mb": 64,
        "interactive_fraction": 0.4,
        "batch_fraction": 0.3,
    }
    base.update(params or {})

    if plan_records is None:
        # Horizon generously past the arrivals so renewal crashes can
        # land while VMs are still held.
        rate = float(base.get("rate_per_s", 2.0))
        horizon_s = requests_per_site / max(rate, 1e-9) + 6.0 * mttr_s
        wan_links: List[Tuple[str, int]] = []
        if wan_site is not None:
            wan_links.append((f"spill{wan_site}", wan_site))
        plan = grid_fault_plan(
            seed,
            sites,
            horizon_s,
            plants_per_site=int(base.get("plants", 8)),
            crash_plants_per_site=crash_plants_per_site,
            mtbf_s=mtbf_s,
            mttr_s=mttr_s,
            blackout_sites=(blackout_site,),
            blackout_at=blackout_at,
            blackout_s=blackout_s,
            gateway_hang_sites=(),
            wan_links=wan_links,
            wan_severity=wan_severity,
            wan_at=wan_at,
            wan_s=wan_s,
        )
        plan_records = plan.to_records()
    else:
        plan = FaultPlan.from_records(plan_records)
        plan_records = plan.to_records()

    result = MegaChaosResult(
        config=cfg,
        plan_records=plan_records,
        plan_signature=plan.signature(),
    )

    from repro.workloads.megaload import merge_site_summaries

    for rung in LADDER:
        prm = _rung_params(rung, base, cfg, plan_records)
        run = ShardedTestbed(
            seed=seed, sites=sites, shards=shards, scenario="megaload"
        ).run(params=prm, collect=None, deadline_s=deadline_s)
        partition = dict(enumerate(run.partition))
        merged = merge_site_summaries(
            run.site_results,
            group_of=lambda site: partition[site],
        )
        stats = run.combined_stats()
        arrivals = int(stats.get("arrivals", 0))
        ok = merged.total("ok")
        shed = merged.total("shed")
        failed = merged.total("failed")
        makespan = max(
            float(r["stats"].get("final_time", r["now"]))
            for r in run.site_results
        )
        leaks = {
            k[len("leak_"):]: v
            for k, v in stats.items()
            if k.startswith("leak_")
        }
        result.points.append(
            MegaChaosPoint(
                rung=rung,
                shards=shards,
                arrivals=arrivals,
                ok=ok,
                failed=failed,
                shed=shed,
                preempted=int(stats.get("preempted", 0)),
                deadline_miss=merged.total("deadline_miss"),
                spilled_ok=int(stats.get("spilled_ok", 0)),
                spill_retries=int(stats.get("spill_retries", 0)),
                spill_timeout=int(stats.get("spill_timeout", 0)),
                spills_dropped=int(stats.get("spills_dropped", 0)),
                local_fallbacks=int(stats.get("local_fallbacks", 0)),
                faults_applied=int(stats.get("faults_applied", 0)),
                faults_skipped=int(stats.get("faults_skipped", 0)),
                availability=(
                    (arrivals - failed) / arrivals if arrivals else 0.0
                ),
                goodput_per_s=ok / makespan if makespan > 0 else 0.0,
                makespan_s=makespan,
                leaks=leaks,
                summary_signature=merged.state_signature(),
            )
        )

    # Determinism recheck: the full ladder rung (faults + failover +
    # admission all on) must fingerprint identically at every shard
    # count, and the merged summaries must be bit-identical.
    det_counts = sorted(
        {c for c in det_shard_counts if 1 <= c <= sites}
    )
    det_base = dict(base)
    det_base["requests"] = min(
        determinism_requests, requests_per_site
    )
    det_prm = _rung_params("admission", det_base, cfg, plan_records)
    for det_shards in det_counts:
        run = ShardedTestbed(
            seed=seed,
            sites=sites,
            shards=det_shards,
            scenario="megaload",
        ).run(
            params=det_prm,
            collect="fingerprint",
            deadline_s=deadline_s,
            trace_capacity=trace_capacity,
        )
        result.fingerprints[det_shards] = run.fingerprint()
        partition = dict(enumerate(run.partition))
        result.det_signatures[det_shards] = merge_site_summaries(
            run.site_results,
            group_of=lambda site: partition[site],
        ).state_signature()
    if det_counts:
        run = ShardedTestbed(
            seed=seed,
            sites=sites,
            shards=det_counts[-1],
            scenario="megaload",
        ).run(
            params=det_prm,
            collect="fingerprint",
            deadline_s=deadline_s,
            trace_capacity=trace_capacity,
        )
        result.repeat_fingerprint = run.fingerprint()
    return result
