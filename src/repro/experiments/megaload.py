"""Megaload sweep: trace-driven sites, streaming metrics, any scale.

Runs the ``megaload`` scenario — one federated site per kernel shard
under the lazy multi-tenant arrival streams of
:mod:`repro.workloads.traces` — across shard counts, and measures the
control-plane rate the million-request rung hangs on:

* ``req/s (wall)`` — completed requests per coordinator wall-clock
  second, and ``agg req/s`` — sum over shards of (its completed
  requests / its CPU-seconds), the machine-independent number.
* latency quantiles from the merged per-site
  :class:`~repro.analysis.streaming.WorkloadSummary` sketches — never
  from stored samples; the coordinator merges per-shard partials
  first, then across shards, exactly as a distributed collector
  would.
* ``peak RSS`` — the largest worker's peak resident set, the bound
  that makes the 1M-request run fit a developer machine.

Two invariants are asserted on every sweep and reported:

* **fingerprints** — merged-trace fingerprints at 1 shard vs
  ``max(shard_counts)`` vs a repeat are identical (the PR 6 / PR 8
  determinism contract, rechecked under bounded tracers);
* **sketches** — the merged summary state is bit-identical at every
  shard count (the exact-merge contract of
  :mod:`repro.analysis.streaming`).

Scaling rungs::

    vmplants megaload                                   # smoke
    vmplants megaload --sites 8 --shards 1 4 8 \\
        --requests-per-site 2000                        # 16k requests
    vmplants megaload --sites 16 --shards 16 \\
        --requests-per-site 62500                       # 1M requests
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.shard import ShardedTestbed

__all__ = ["MegaLoadPoint", "MegaLoadResult", "run_megaload"]


@dataclass(frozen=True)
class MegaLoadPoint:
    """One timed megaload run at a given shard count."""

    shards: int
    sites: int
    requests: int
    arrivals: int
    ok: int
    failed: int
    deadline_miss: int
    spilled_ok: int
    events: int
    wall_s: float
    cpu_s: float
    agg_events_per_sec: float
    wall_requests_per_sec: float
    agg_requests_per_sec: float
    peak_rss_mb: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    summary_signature: str

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "sites": self.sites,
            "requests": self.requests,
            "arrivals": self.arrivals,
            "ok": self.ok,
            "failed": self.failed,
            "deadline_miss": self.deadline_miss,
            "spilled_ok": self.spilled_ok,
            "events": self.events,
            "wall_s": round(self.wall_s, 4),
            "cpu_s": round(self.cpu_s, 4),
            "agg_events_per_sec": round(self.agg_events_per_sec, 1),
            "wall_requests_per_sec": round(
                self.wall_requests_per_sec, 2
            ),
            "agg_requests_per_sec": round(
                self.agg_requests_per_sec, 2
            ),
            "peak_rss_mb": round(self.peak_rss_mb, 1),
            "p50_latency_s": round(self.p50_latency_s, 3),
            "p95_latency_s": round(self.p95_latency_s, 3),
            "p99_latency_s": round(self.p99_latency_s, 3),
            "mean_latency_s": round(self.mean_latency_s, 3),
            "summary_signature": self.summary_signature,
        }


@dataclass
class MegaLoadResult:
    """Full sweep plus the determinism and exact-merge rechecks."""

    seed: int
    sites: int
    shard_counts: Tuple[int, ...]
    params: Dict[str, Any]
    points: List[MegaLoadPoint] = field(default_factory=list)
    #: (tenant, ok, failed, misses, p95) from the largest run.
    tenant_rows: List[Tuple[str, int, int, int, float]] = field(
        default_factory=list
    )
    #: shard count -> merged-trace fingerprint (bounded tracers).
    fingerprints: Dict[int, str] = field(default_factory=dict)
    repeat_fingerprint: str = ""
    #: Trace events dropped by the bounded tracers in the recheck.
    trace_dropped: int = 0
    trace_capacity: Optional[int] = None

    @property
    def sketch_equal(self) -> bool:
        """Merged summary state bit-identical at every shard count."""
        sigs = {p.summary_signature for p in self.points}
        return len(sigs) == 1

    @property
    def deterministic(self) -> bool:
        fps = set(self.fingerprints.values())
        return (
            len(fps) == 1
            and self.repeat_fingerprint in fps
            and self.sketch_equal
        )

    def point(self, shards: int) -> MegaLoadPoint:
        for p in self.points:
            if p.shards == shards:
                return p
        raise KeyError(f"no point for shards={shards}")

    def render(self) -> str:
        prm = self.params
        total = self.sites * prm["requests"]
        lines = [
            "Extension: trace-driven megaload "
            f"({self.sites} sites x {prm['requests']} requests/site "
            f"= {total} requests; {prm['plants']} plants/site, "
            f"mix {prm['interactive_fraction']:.0%} interactive / "
            f"{prm['batch_fraction']:.0%} batch / flash remainder)",
            "",
            f"{'shards':>6} {'ok':>9} {'miss':>6} {'req/s':>8} "
            f"{'agg req/s':>10} {'p50 (s)':>8} {'p95 (s)':>8} "
            f"{'p99 (s)':>8} {'RSS MB':>7}",
            "-" * 78,
        ]
        for p in self.points:
            lines.append(
                f"{p.shards:>6d} {p.ok:>9d} {p.deadline_miss:>6d} "
                f"{p.wall_requests_per_sec:>8.1f} "
                f"{p.agg_requests_per_sec:>10.1f} "
                f"{p.p50_latency_s:>8.1f} {p.p95_latency_s:>8.1f} "
                f"{p.p99_latency_s:>8.1f} {p.peak_rss_mb:>7.0f}"
            )
        lines.append("-" * 78)
        if self.tenant_rows:
            lines.append(
                f"{'tenant':>12} {'ok':>9} {'failed':>7} "
                f"{'miss':>6} {'p95 (s)':>8}"
            )
            for tenant, ok, failed, miss, p95 in self.tenant_rows:
                lines.append(
                    f"{tenant:>12} {ok:>9d} {failed:>7d} "
                    f"{miss:>6d} {p95:>8.1f}"
                )
            lines.append("-" * 78)
        if self.sketch_equal and self.points:
            lines.append(
                "sketches: merged summary state bit-identical at "
                f"shard counts {[p.shards for p in self.points]} "
                f"({self.points[0].summary_signature[:16]})"
            )
        elif self.points:
            lines.append(
                "sketches: MERGE MISMATCH — "
                + str(
                    {
                        p.shards: p.summary_signature[:16]
                        for p in self.points
                    }
                )
            )
        fps = sorted(set(self.fingerprints.values()))
        if len(fps) == 1 and self.repeat_fingerprint in fps:
            lines.append(
                f"determinism: merged-trace fingerprint {fps[0][:16]} "
                f"identical at shard counts "
                f"{sorted(self.fingerprints)} and across repeats"
            )
        else:
            lines.append(
                "determinism: FAILED — fingerprints "
                f"{ {k: v[:16] for k, v in self.fingerprints.items()} } "
                f"repeat {self.repeat_fingerprint[:16]}"
            )
        if self.trace_capacity is not None:
            lines.append(
                f"tracer: bounded to {self.trace_capacity} "
                f"events/site in the recheck; "
                f"{self.trace_dropped} events dropped"
                + (
                    " (fingerprints cover the retained tail only)"
                    if self.trace_dropped
                    else ""
                )
            )
        return "\n".join(lines)

    def to_record(self) -> dict:
        return {
            "seed": self.seed,
            "sites": self.sites,
            "shard_counts": list(self.shard_counts),
            "params": {
                k: v for k, v in sorted(self.params.items())
            },
            "points": [p.as_dict() for p in self.points],
            "tenants": [
                {
                    "tenant": t,
                    "ok": ok,
                    "failed": failed,
                    "deadline_miss": miss,
                    "p95_latency_s": round(p95, 3),
                }
                for t, ok, failed, miss, p95 in self.tenant_rows
            ],
            "peak_rss_mb": max(
                (p.peak_rss_mb for p in self.points), default=0.0
            ),
            "sketch_equal": self.sketch_equal,
            "deterministic": self.deterministic,
            "fingerprint": next(
                iter(self.fingerprints.values()), ""
            ),
            "trace_capacity": self.trace_capacity,
            "trace_dropped": self.trace_dropped,
        }


def _shard_requests_per_cpu(run) -> float:
    """Sum over shards of (its sites' completed requests / CPU s)."""
    ok_of = {
        r["site"]: int(r["stats"].get("ok", 0))
        for r in run.site_results
    }
    total = 0.0
    for s in run.shard_results:
        if s["cpu_s"] > 0:
            total += sum(ok_of[site] for site in s["sites"]) / s["cpu_s"]
    return total


def run_megaload(
    seed: int = 2004,
    sites: int = 4,
    shard_counts: Sequence[int] = (1, 2, 4),
    requests_per_site: int = 250,
    params: Optional[Dict[str, Any]] = None,
    determinism_requests: int = 40,
    deadline_s: Optional[float] = 1800.0,
    trace_capacity: Optional[int] = 100_000,
) -> MegaLoadResult:
    """Sweep shard counts over one trace; recheck both contracts.

    Timing runs disable tracing entirely (streaming summaries carry
    the metrics); the determinism recheck reruns a shortened trace at
    1 shard, ``max(shard_counts)`` shards and a repeat with tracing
    bounded to ``trace_capacity`` events per site — at megaload scale
    an unbounded tracer would be the only unbounded memory left.
    """
    from repro.workloads.megaload import merge_site_summaries

    shard_counts = tuple(shard_counts)
    if not shard_counts or min(shard_counts) < 1:
        raise ValueError("shard_counts must be positive")
    if max(shard_counts) > sites:
        raise ValueError("shard_counts cannot exceed sites")
    prm: Dict[str, Any] = {"requests": requests_per_site}
    prm.update(params or {})

    result = MegaLoadResult(
        seed=seed,
        sites=sites,
        shard_counts=shard_counts,
        params={},
        trace_capacity=trace_capacity,
    )
    for shards in shard_counts:
        plan = ShardedTestbed(
            seed=seed, sites=sites, shards=shards, scenario="megaload"
        )
        run = plan.run(
            params=prm, collect=None, deadline_s=deadline_s
        )
        result.params = run.params
        partition = dict(enumerate(run.partition))
        merged = merge_site_summaries(
            run.site_results,
            group_of=lambda site: partition[site],
        )
        overall = merged.overall()
        stats = run.combined_stats()
        ok = merged.total("ok")
        result.points.append(
            MegaLoadPoint(
                shards=shards,
                sites=sites,
                requests=sites * run.params["requests"],
                arrivals=int(stats.get("arrivals", 0)),
                ok=ok,
                failed=merged.total("failed"),
                deadline_miss=merged.total("deadline_miss"),
                spilled_ok=int(stats.get("spilled_ok", 0)),
                events=run.total_events,
                wall_s=run.wall_s,
                cpu_s=sum(s["cpu_s"] for s in run.shard_results),
                agg_events_per_sec=run.agg_events_per_sec,
                wall_requests_per_sec=(
                    ok / run.wall_s if run.wall_s > 0 else 0.0
                ),
                agg_requests_per_sec=_shard_requests_per_cpu(run),
                peak_rss_mb=run.peak_rss_kb / 1024.0,
                p50_latency_s=overall.quantile(0.50),
                p95_latency_s=overall.quantile(0.95),
                p99_latency_s=overall.quantile(0.99),
                mean_latency_s=overall.mean,
                summary_signature=merged.state_signature(),
            )
        )
        result.tenant_rows = merged.tenant_rows()

    det_prm = dict(prm)
    det_prm["requests"] = min(
        determinism_requests, requests_per_site
    )
    det_counts = sorted({1, max(shard_counts)})
    for shards in det_counts:
        plan = ShardedTestbed(
            seed=seed, sites=sites, shards=shards, scenario="megaload"
        )
        run = plan.run(
            params=det_prm,
            collect="fingerprint",
            deadline_s=deadline_s,
            trace_capacity=trace_capacity,
        )
        result.fingerprints[shards] = run.fingerprint()
        result.trace_dropped = max(
            result.trace_dropped, run.trace_dropped
        )
    plan = ShardedTestbed(
        seed=seed,
        sites=sites,
        shards=det_counts[-1],
        scenario="megaload",
    )
    run = plan.run(
        params=det_prm,
        collect="fingerprint",
        deadline_s=deadline_s,
        trace_capacity=trace_capacity,
    )
    result.repeat_fingerprint = run.fingerprint()
    return result
