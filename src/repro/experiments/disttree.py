"""Image-distribution scale ladder: NFS star vs. peer broadcast tree.

The paper's testbed delivers every clone's golden state over one
shared NFS path, so a same-image burst across N hosts serializes on
that link and creation p95 grows linearly with the fleet.  This
experiment sweeps the fleet size (8 → 512 hosts by default) and
measures the same one-VM-per-host broadcast burst under two wirings:

* ``nfs-star`` — the all-off baseline, every host pulls from the
  warehouse;
* ``tree`` — the :mod:`repro.distribution` planner, where the first
  NFS fetch seeds a k-ary peer tree and every later host copies from
  an already-seeded peer.

The headline figure is *p95 flatness*: the tree's creation p95 at the
top of the ladder divided by its value at the bottom.  Tree delivery
grows with depth (O(log N)), so the ratio stays near 1 while the star
baseline's grows roughly like N.

Plants are driven directly (no shop bidding): the point is the
delivery fabric, and an N-plant bidding round is O(N) messages per
request, which at 512 hosts would swamp the thing being measured.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError
from repro.provisioning import ProvisioningConfig
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request

__all__ = [
    "VARIANTS",
    "DistPoint",
    "DistTreeResult",
    "run_disttree",
]

#: Delivery wirings compared at every ladder rung.
VARIANTS: Tuple[str, ...] = ("nfs-star", "tree")


def _variant_config(
    variant: str, fanout: int, peer_store_mb: float
) -> ProvisioningConfig:
    if variant == "nfs-star":
        return ProvisioningConfig()
    if variant == "tree":
        return ProvisioningConfig(
            distribution_tree=True,
            tree_fanout=fanout,
            peer_store_mb=peer_store_mb,
        )
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class DistPoint:
    """One (variant, fleet size) broadcast-burst measurement."""

    variant: str
    hosts: int
    ok: int
    failed: int
    p50_s: float
    p95_s: float
    mean_s: float
    max_s: float
    makespan_s: float
    nfs_mb: float
    #: Planner counters (zero for the star variant).
    peer_hops: int
    attaches: int
    fallbacks: int
    nfs_seeds: int
    #: SHA-256 over the per-host latencies (determinism checks).
    fingerprint: str

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "hosts": self.hosts,
            "ok": self.ok,
            "failed": self.failed,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
            "makespan_s": self.makespan_s,
            "nfs_mb": self.nfs_mb,
            "peer_hops": self.peer_hops,
            "attaches": self.attaches,
            "fallbacks": self.fallbacks,
            "nfs_seeds": self.nfs_seeds,
            "fingerprint": self.fingerprint,
        }


@dataclass
class DistTreeResult:
    """Full ladder: variant → points in increasing fleet size."""

    seed: int
    memory_mb: int
    hosts: Tuple[int, ...]
    fanout: int
    points: Dict[str, List[DistPoint]] = field(default_factory=dict)

    def point(self, variant: str, hosts: int) -> DistPoint:
        """The measurement for one (variant, fleet size) rung."""
        for p in self.points[variant]:
            if p.hosts == hosts:
                return p
        raise KeyError(f"no point for {variant!r} at {hosts} hosts")

    def p95_growth(self, variant: str) -> float:
        """p95 at the top of the ladder over p95 at the bottom."""
        lo = self.point(variant, min(self.hosts))
        hi = self.point(variant, max(self.hosts))
        return hi.p95_s / lo.p95_s

    def render(self) -> str:
        lines = [
            "Extension: golden-image distribution at scale "
            f"(one {self.memory_mb} MB VM per host, same-image burst, "
            f"tree fan-out {self.fanout})",
            "",
            f"{'variant':<10} {'hosts':>5} {'ok':>4} {'p50 (s)':>8} "
            f"{'p95 (s)':>8} {'max (s)':>8} {'NFS MB':>9} "
            f"{'hops':>5} {'attach':>6} {'fall':>4}",
            "-" * 76,
        ]
        for variant in self.points:
            for p in self.points[variant]:
                lines.append(
                    f"{variant:<10} {p.hosts:>5d} {p.ok:>4d} "
                    f"{p.p50_s:>8.1f} {p.p95_s:>8.1f} {p.max_s:>8.1f} "
                    f"{p.nfs_mb:>9.0f} {p.peer_hops:>5d} "
                    f"{p.attaches:>6d} {p.fallbacks:>4d}"
                )
        lines.append("-" * 76)
        lines.append(
            f"{min(self.hosts)}->{max(self.hosts)} hosts: tree p95 grows "
            f"{self.p95_growth('tree'):.2f}x while the NFS star grows "
            f"{self.p95_growth('nfs-star'):.1f}x"
        )
        return "\n".join(lines)


def _fingerprint(latencies: Sequence[float]) -> str:
    payload = ",".join(f"{v:.9f}" for v in latencies)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _run_point(
    variant: str,
    config: ProvisioningConfig,
    seed: int,
    memory_mb: int,
    hosts: int,
) -> DistPoint:
    bed = build_testbed(seed=seed, n_plants=hosts, provisioning=config)
    request = experiment_request(memory_mb)
    latencies: List[float] = []
    failures = [0]

    def one(index: int) -> Generator:
        start = bed.env.now
        try:
            yield from bed.plants[index].create(request, f"dist-{index}")
        except ReproError:
            failures[0] += 1
            return
        latencies.append(bed.env.now - start)

    def burst() -> Generator:
        procs = [bed.env.process(one(i)) for i in range(hosts)]
        yield bed.env.all_of(procs)

    start = bed.env.now
    bed.run(burst())
    makespan = bed.env.now - start
    sample = np.asarray(latencies, dtype=float)
    ok = int(sample.size)
    planner = bed.distribution
    return DistPoint(
        variant=variant,
        hosts=hosts,
        ok=ok,
        failed=failures[0],
        p50_s=float(np.percentile(sample, 50)) if ok else float("nan"),
        p95_s=float(np.percentile(sample, 95)) if ok else float("nan"),
        mean_s=float(sample.mean()) if ok else float("nan"),
        max_s=float(sample.max()) if ok else float("nan"),
        makespan_s=makespan,
        nfs_mb=float(bed.nfs.mb_served),
        peer_hops=planner.peer_hops if planner else 0,
        attaches=planner.attaches if planner else 0,
        fallbacks=planner.fallbacks if planner else 0,
        nfs_seeds=planner.nfs_seeds if planner else 0,
        fingerprint=_fingerprint(latencies),
    )


def run_disttree(
    seed: int = 2004,
    memory_mb: int = 64,
    hosts: Sequence[int] = (8, 32, 128, 512),
    fanout: int = 2,
    peer_store_mb: float = 1024.0,
    variants: Sequence[str] = VARIANTS,
) -> DistTreeResult:
    """Sweep fleet sizes across delivery wirings (same-image burst)."""
    if not hosts or any(h <= 0 for h in hosts):
        raise ValueError("hosts must be positive")
    unknown = set(variants) - set(VARIANTS)
    if unknown:
        raise ValueError(f"unknown variants: {sorted(unknown)}")
    result = DistTreeResult(
        seed=seed,
        memory_mb=memory_mb,
        hosts=tuple(hosts),
        fanout=fanout,
    )
    for variant in variants:
        config = _variant_config(variant, fanout, peer_store_mb)
        result.points[variant] = [
            _run_point(variant, config, seed, memory_mb, n)
            for n in hosts
        ]
    return result
