"""Extension experiment: concurrent creation requests.

The paper's Section 4.2 methodology is strictly sequential ("a series
of requests, in sequence"); production-grade problem-solving
environments issue requests concurrently.  This experiment measures
what happens when up to ``k`` creations are in flight at once:

* per-VM cloning gets **slower** — all clones pull their memory state
  across the same 100 Mbit/s NFS path (the fair-share link), so the
  copy phase contends;
* total **makespan drops** — the fixed resume/configuration costs
  overlap across plants.

This exercises the substrate's contention machinery end to end and
quantifies a deployment question the paper leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.analysis.stats import Summary, summarize
from repro.sim.cluster import build_testbed
from repro.sim.resources import Resource
from repro.workloads.requests import request_stream

__all__ = [
    "ConcurrencyResult",
    "ReplicaResult",
    "run_concurrency",
    "run_warehouse_replicas",
]


@dataclass
class ConcurrencyResult:
    """Sweep over in-flight request limits."""

    memory_mb: int
    requests: int
    #: concurrency level → summary of per-VM creation latency.
    latency: Dict[int, Summary]
    #: concurrency level → summary of per-VM cloning time.
    cloning: Dict[int, Summary]
    #: concurrency level → total time to finish all requests.
    makespan: Dict[int, float]

    def render(self) -> str:
        lines = [
            f"Extension: request concurrency "
            f"({self.requests} x {self.memory_mb} MB VMs, 8 plants, "
            "shared NFS path)",
            "",
            f"{'in-flight':>10} {'clone mean (s)':>15} "
            f"{'creation mean (s)':>18} {'makespan (s)':>13}",
            "-" * 60,
        ]
        for k in sorted(self.latency):
            lines.append(
                f"{k:>10d} {self.cloning[k].mean:>15.1f} "
                f"{self.latency[k].mean:>18.1f} "
                f"{self.makespan[k]:>13.1f}"
            )
        lines.append("-" * 60)
        lines.append(
            "concurrency slows individual clones (NFS contention) but "
            "shrinks the makespan"
        )
        return "\n".join(lines)


@dataclass
class ReplicaResult:
    """Warehouse replication under a fixed concurrency level."""

    level: int
    memory_mb: int
    requests: int
    #: replica count → summary of per-VM cloning time.
    cloning: Dict[int, Summary]
    #: replica count → makespan.
    makespan: Dict[int, float]

    def render(self) -> str:
        lines = [
            "Extension: replicated VM warehouse "
            f"({self.requests} x {self.memory_mb} MB VMs, "
            f"{self.level} in flight)",
            "",
            f"{'replicas':>9} {'clone mean (s)':>15} {'makespan (s)':>13}",
            "-" * 41,
        ]
        for n in sorted(self.cloning):
            lines.append(
                f"{n:>9d} {self.cloning[n].mean:>15.1f} "
                f"{self.makespan[n]:>13.1f}"
            )
        lines.append("-" * 41)
        lines.append(
            "replicas relieve the NFS bottleneck concurrency exposes"
        )
        return "\n".join(lines)


def run_warehouse_replicas(
    seed: int = 2004,
    memory_mb: int = 64,
    requests: int = 24,
    level: int = 8,
    replica_counts: tuple = (1, 2, 4),
) -> ReplicaResult:
    """Sweep warehouse replica counts at a fixed concurrency level."""
    cloning: Dict[int, Summary] = {}
    makespan: Dict[int, float] = {}
    for replicas in replica_counts:
        bed = build_testbed(
            seed=seed, n_plants=8, nfs_replicas=replicas
        )
        stream = request_stream(memory_mb, requests)
        gate = Resource(bed.env, capacity=level)

        def one(request) -> Generator:
            with gate.request() as slot:
                yield slot
                yield from bed.shop.create(request)

        def client() -> Generator:
            procs = [
                bed.env.process(one(request)) for request in stream
            ]
            yield bed.env.all_of(procs)

        start = bed.env.now
        bed.run(client())
        makespan[replicas] = bed.env.now - start
        cloning[replicas] = summarize(
            [r.total_time for r in bed.clone_records()]
        )
    return ReplicaResult(
        level=level,
        memory_mb=memory_mb,
        requests=requests,
        cloning=cloning,
        makespan=makespan,
    )


def run_concurrency(
    seed: int = 2004,
    memory_mb: int = 64,
    requests: int = 24,
    levels: tuple = (1, 4, 8),
) -> ConcurrencyResult:
    """Run the same request batch at several in-flight limits."""
    latency: Dict[int, Summary] = {}
    cloning: Dict[int, Summary] = {}
    makespan: Dict[int, float] = {}

    for level in levels:
        bed = build_testbed(seed=seed, n_plants=8)
        stream = request_stream(memory_mb, requests)
        gate = Resource(bed.env, capacity=level)
        latencies: List[float] = []

        def one(request) -> Generator:
            with gate.request() as slot:
                yield slot
                start = bed.env.now
                yield from bed.shop.create(request)
                latencies.append(bed.env.now - start)

        def client() -> Generator:
            procs = [
                bed.env.process(one(request)) for request in stream
            ]
            yield bed.env.all_of(procs)

        start = bed.env.now
        bed.run(client())
        makespan[level] = bed.env.now - start
        latency[level] = summarize(latencies)
        cloning[level] = summarize(
            [r.total_time for r in bed.clone_records()]
        )

    return ConcurrencyResult(
        memory_mb=memory_mb,
        requests=requests,
        latency=latency,
        cloning=cloning,
        makespan=makespan,
    )
