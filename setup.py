"""Legacy setup shim so editable installs work without network access."""

from setuptools import setup

setup()
