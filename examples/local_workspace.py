#!/usr/bin/env python
"""Directory-backed VMs: the clone-and-configure mechanics for real.

Uses the local production line: golden images are real directories,
cloning really soft-links the base disk chunks (compare the byte
counts!), and configuration actions run as real ``sh`` scripts inside
the clone's guest directory, publishing outputs through the
``VMPLANT_OUTPUT`` stdout protocol.

Run:  python examples/local_workspace.py
"""

import os
import tempfile
from pathlib import Path

from repro import (
    Action,
    ConfigDAG,
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
    VMPlant,
)
from repro.local import LocalImageStore, LocalProductionLine
from repro.plant.warehouse import GoldenImage
from repro.sim.kernel import Environment
from repro.workloads.requests import install_os_action


def du(path: Path) -> int:
    """Bytes actually stored under ``path`` (links count as 0)."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            full = Path(root) / name
            if not full.is_symlink():
                total += full.stat().st_size
    return total


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="vmplant-local-"))
    print(f"working under {workdir}")

    # Materialize a golden image: config file, 8-chunk disk, memory
    # state, base redo log, XML descriptor — all real files.
    store = LocalImageStore(workdir / "warehouse")
    image = GoldenImage(
        image_id="golden-shell",
        vm_type="vmware",
        os="shell",
        hardware=HardwareSpec(memory_mb=32),
        performed=(install_os_action("shell"),),
        disk_state_mb=512,
        disk_files=8,
        memory_state_mb=32,
    )
    image_dir = store.add(image)
    print(f"golden image occupies {du(image_dir)} bytes "
          f"({len(store.disk_chunks(image.image_id))} disk chunks)")

    env = Environment()
    line = LocalProductionLine(env, store, workdir / "plant-run")
    plant = VMPlant(env, "localplant", store.to_warehouse(),
                    {"vmware": line})

    # A real configuration DAG: every command genuinely executes.
    dag = ConfigDAG.from_sequence([
        install_os_action("shell"),
        Action(
            "write-motd",
            command=(
                "echo \"workspace for $VMPLANT_CLIENT at $VMPLANT_IP\""
                " > etc-motd"
            ),
        ),
        Action(
            "report-hostname",
            command=(
                "hostname=ws-$VMPLANT_VMID; echo VMPLANT_OUTPUT "
                "hostname=$hostname"
            ),
            outputs=("hostname",),
        ),
    ])
    request = CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(os="shell", dag=dag),
        network=NetworkSpec(domain="example.org"),
        client_id="alice",
        vm_type="vmware",
    )
    proc = env.process(plant.create(request, "ws-001"))
    ad = env.run(until=proc)

    clone_dir = workdir / "plant-run" / "ws-001"
    chunk = clone_dir / "disk" / "chunk-00.vmdk"
    print(f"\nclone {ad['vmid']}:")
    print(f"  disk chunk is a symlink : {chunk.is_symlink()}")
    print(f"  clone occupies          : {du(clone_dir)} bytes "
          "(vs. the golden image above — links, not copies)")
    print(f"  guest wrote             : "
          f"{(clone_dir / 'guest' / 'etc-motd').read_text().strip()!r}")
    print(f"  script output           : hostname={ad['hostname']}")

    proc = env.process(plant.destroy(ad["vmid"]))
    env.run(until=proc)
    print(f"\ncollected; clone directory removed: {not clone_dir.exists()}")


if __name__ == "__main__":
    main()
