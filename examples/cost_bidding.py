#!/usr/bin/env python
"""The Section 3.4 cost-function illustration, step by step.

Two plants, four host-only networks each, network cost 50 and compute
cost 4 per hosted VM.  One client domain requests VM after VM; watch
the bids and the crossover at the 14th request, when the first plant's
accumulated compute cost finally exceeds the competitor's one-time
network cost.

Run:  python examples/cost_bidding.py
"""

from repro.experiments.costfn import run_costfn


def main() -> None:
    result = run_costfn(seed=11, requests=16)
    print(result.render())
    print()
    first = result.first_plant
    print(f"The shop picked {first} at random for request 1 (both bid "
          "the network cost, 50).")
    print(f"Requests 2-13 stayed on {first}: its compute cost 4*k was "
          "below the other plant's network cost.")
    print(f"Request {result.crossover} switched plants: 4*13 = 52 > 50, "
          "so a second host-only network was allocated.")


if __name__ == "__main__":
    main()
