#!/usr/bin/env python
"""VMArchitect: a virtual network spanning three administrative domains.

Builds the §6 future-work scenario: one router VM per domain (created
through the ordinary VMShop path with a router configuration DAG),
meshed into a named virtual network; compute VMs attach through their
domain's router, and cross-domain paths resolve through the tunnels.

Run:  python examples/virtual_grid.py
"""

from repro import build_testbed, experiment_request
from repro.vnet.architect import VMArchitect


def main() -> None:
    bed = build_testbed(seed=17, n_plants=4)
    architect = VMArchitect(bed.shop)

    domains = ["cs.ufl.edu", "ece.nwu.edu", "hep.cern.ch"]
    print(f"building virtual network 'grid-net' over {len(domains)} "
          "domains...")
    net = bed.run(architect.build_network("grid-net", domains))

    for domain in net.domains():
        router = net.router_for(domain)
        print(f"  router {router.vmid} for {domain:<12} on "
              f"{router.plant} ip={router.ip} "
              f"tunnel={router.tunnel_port}")
    print(f"  tunnels (full mesh): {net.tunnels}")

    # Attach one compute VM per domain.
    members = {}
    for domain in domains:
        ad = bed.run(bed.shop.create(experiment_request(32, domain=domain)))
        vmid = str(ad["vmid"])
        net.attach_member(vmid, domain)
        members[domain] = vmid
        print(f"  member {vmid} joined via {domain}'s router")

    src, dst = members[domains[0]], members[domains[2]]
    print(f"\nroute {src} -> {dst}:")
    for hop in net.route(src, dst):
        print(f"  -> {hop}")

    same_a, same_b = members[domains[0]], members[domains[0]]
    print(f"\nintra-domain route goes through the shared router:")
    ad2 = bed.run(bed.shop.create(experiment_request(32, domain=domains[0])))
    net.attach_member(str(ad2["vmid"]), domains[0])
    for hop in net.route(src, str(ad2["vmid"])):
        print(f"  -> {hop}")

    collected = bed.run(architect.teardown_network("grid-net"))
    print(f"\ntore down 'grid-net': {collected} routers collected")


if __name__ == "__main__":
    main()
