#!/usr/bin/env python
"""Regenerate every figure and in-text number of the paper's evaluation.

Runs the full Section 4 methodology on the simulated testbed and
prints paper-style tables for Figures 4-6, the UML study, the
Section 3.4 cost-function illustration and the Section 4.3 prose
numbers.  This is the same code the benchmark harness drives.

Run:  python examples/reproduce_paper.py [seed]
"""

import sys

from repro.experiments.ablations import (
    run_clone_mode_ablation,
    run_cost_model_ablation,
    run_matching_ablation,
    run_speculative_ablation,
)
from repro.experiments.costfn import run_costfn
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import run_creation_suite
from repro.experiments.textnumbers import run_textnumbers
from repro.experiments.uml import run_uml


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2004
    print(f"(seed {seed})\n")

    suite = run_creation_suite(seed=seed)
    sections = [
        run_figure4(suite=suite).render(),
        run_figure5(suite=suite).render(),
        run_figure6(suite=suite).render(),
        run_uml(seed=seed).render(),
        run_costfn(seed=seed).render(),
        run_textnumbers(seed=seed, suite=suite).render(),
        run_clone_mode_ablation(seed=seed).render(),
        run_matching_ablation(seed=seed).render(),
        run_speculative_ablation(seed=seed).render(),
        run_cost_model_ablation(seed=seed).render(),
    ]
    print(("\n\n" + "=" * 70 + "\n\n").join(sections))


if __name__ == "__main__":
    main()
