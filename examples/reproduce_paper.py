#!/usr/bin/env python
"""Regenerate every figure and in-text number of the paper's evaluation.

Runs the full Section 4 methodology on the simulated testbed and
prints paper-style tables for Figures 4-6, the UML study, the
Section 3.4 cost-function illustration, the Section 4.3 prose
numbers and the ablations.  This is the same code the benchmark
harness drives.

Independent sections fan out across a process pool (see
``repro.experiments.parallel``) and every result is memoized in the
on-disk cache, so a repeat invocation with unchanged source prints
the identical report from cache in a fraction of the time.

Run:  python examples/reproduce_paper.py [seed] [--no-cache] [--serial]
"""

import argparse
import sys
import time

from repro.experiments.ablations import (
    run_clone_mode_ablation,
    run_cost_model_ablation,
    run_matching_ablation,
    run_speculative_ablation,
)
from repro.experiments.cache import ResultCache
from repro.experiments.costfn import run_costfn
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.parallel import Job, rendered, run_jobs
from repro.experiments.runner import run_creation_suite
from repro.experiments.textnumbers import run_textnumbers
from repro.experiments.uml import run_uml

#: Sections whose drivers build their own testbeds — safe to fan out.
INDEPENDENT_SECTIONS = [
    ("uml", run_uml),
    ("costfn", run_costfn),
    ("ablation-clone-mode", run_clone_mode_ablation),
    ("ablation-matching", run_matching_ablation),
    ("ablation-speculative", run_speculative_ablation),
    ("ablation-cost-model", run_cost_model_ablation),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("seed", nargs="?", type=int, default=2004)
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and bypass the on-disk result cache",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="disable the process-pool fan-out",
    )
    args = parser.parse_args()
    seed = args.seed
    print(f"(seed {seed})\n")
    started = time.perf_counter()

    cache = ResultCache(enabled=not args.no_cache)
    mode = "serial" if args.serial else "auto"

    # The three creation streams: cached per-run, fanned out on miss.
    suite = run_creation_suite(
        seed=seed, parallel=not args.serial, cache=cache
    )

    # Sections with their own testbeds: rendered in workers, memoized
    # as text.
    texts = {}
    pending = []
    for name, fn in INDEPENDENT_SECTIONS:
        hit = cache.get(f"section-{name}", {"seed": seed})
        if hit is not None:
            texts[name] = hit
        else:
            pending.append(
                Job(key=name, fn=rendered, kwargs={"fn": fn, "seed": seed})
            )
    if pending:
        for name, text in run_jobs(pending, mode=mode).items():
            cache.put(f"section-{name}", {"seed": seed}, text)
            texts[name] = text

    sections = [
        run_figure4(suite=suite).render(),
        run_figure5(suite=suite).render(),
        run_figure6(suite=suite).render(),
        texts["uml"],
        texts["costfn"],
        run_textnumbers(seed=seed, suite=suite).render(),
        texts["ablation-clone-mode"],
        texts["ablation-matching"],
        texts["ablation-speculative"],
        texts["ablation-cost-model"],
    ]
    print(("\n\n" + "=" * 70 + "\n\n").join(sections))

    elapsed = time.perf_counter() - started
    print(
        f"\n[{elapsed:.2f}s, cache hits={cache.hits} "
        f"misses={cache.misses} ({cache.root})]",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
