#!/usr/bin/env python
"""Cross-domain VMs with VNET bridging and the gateway scenario.

Three client domains request VMs from one site.  Each request carries
the client's VNET proxy endpoint; the plants attach clones to
host-only networks (never sharing one across domains), set up
plant-to-proxy bridges, and the site gateway exposes each plant's VNET
server through a static SSH tunnel (Section 3.3).

Run:  python examples/multi_domain_vnet.py
"""

from repro import CreateRequest, HardwareSpec, NetworkSpec, SoftwareSpec
from repro.sim.cluster import build_testbed
from repro.vnet.tunnels import Gateway
from repro.workloads.requests import MANDRAKE_OS, experiment_dag


def request_for(domain: str, proxy_port: int) -> CreateRequest:
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(os=MANDRAKE_OS, dag=experiment_dag()),
        network=NetworkSpec(
            domain=domain,
            proxy_host=f"proxy.{domain}",
            proxy_port=proxy_port,
            credentials=f"x509:{domain}",
        ),
        client_id=f"user@{domain}",
        vm_type="vmware",
    )


def main() -> None:
    bed = build_testbed(seed=3, n_plants=3, networks_per_plant=4)

    # The site sits in a private network behind a gateway: establish
    # one static SSH tunnel per plant's VNET server.
    gateway = Gateway("gateway.site.example")
    for plant in bed.plants:
        server = bed.vnet.server_for(plant.name)
        tunnel = gateway.establish_tunnel(server)
        print(f"tunnel {gateway.host}:{tunnel.public_port} -> "
              f"{plant.name}:{tunnel.target_port}")

    domains = ("cs.ufl.edu", "ece.nwu.edu", "hep.cern.ch")

    def client():
        for round_no in range(2):
            for i, domain in enumerate(domains):
                ad = yield from bed.shop.create(
                    request_for(domain, 4000 + i)
                )
                plant = str(ad["plant"])
                print(f"  {ad['vmid']}: domain={domain:<12} "
                      f"plant={plant} net={ad['network_id']} "
                      f"ip={ad['ip']} "
                      f"(dial {gateway.endpoint_for(plant)})")

    print("\ncreating 2 VMs per domain:")
    bed.run(client())

    print("\nactive VNET bridges:")
    for bridge in bed.vnet.bridges():
        print(f"  {bridge.bridge_id}: {bridge.plant_name}/"
              f"{bridge.network_id} <-> {bridge.proxy.host} "
              f"[{bridge.domain}]")

    # The isolation invariant: no host-only network serves two domains.
    bed.vnet.check_isolation()
    for plant in bed.plants:
        plant.network_pool.check_isolation()
    print("\nisolation invariant holds on every plant ✔")


if __name__ == "__main__":
    main()
