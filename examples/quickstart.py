#!/usr/bin/env python
"""Quickstart: create, query and destroy one Grid VM through VMShop.

Builds the simulated 8-node site (the paper's testbed), requests a
32 MB Mandrake 8.1 VM configured with a network interface and a user
identity, inspects its classad, then collects it.

Run:  python examples/quickstart.py
"""

from repro import build_testbed, experiment_request


def main() -> None:
    # The site: 8 VMPlants + NFS warehouse + VMShop, as in Section 4.2.
    bed = build_testbed(seed=42)

    # A creation request: hardware + network + software (the DAG).
    request = experiment_request(memory_mb=32, domain="example.org")
    print("Requesting a VM:")
    print(f"  hardware : {request.hardware}")
    print(f"  software : os={request.software.os}, "
          f"dag={request.dag.topological_sort()}")

    # Create through the shop (bidding selects the cheapest plant).
    ad = bed.run(bed.shop.create(request))
    vmid = ad["vmid"]
    print("\nCreated:")
    print(f"  vmid        : {vmid}")
    print(f"  plant       : {ad['plant']}")
    print(f"  ip          : {ad['ip']} on {ad['network_id']}")
    print(f"  golden image: {ad['image_id']}")
    print(f"  clone time  : {ad['clone_time']:.1f}s "
          f"(+{ad['config_time']:.1f}s configuration)")
    print(f"  cached/run  : {ad['actions_cached']} cached, "
          f"{ad['actions_executed']} executed")

    # Query the live VM (the plant's information system answers).
    status = bed.run(bed.shop.query(vmid, attributes=("status", "uptime")))
    print(f"\nQuery: status={status.get('status')}")

    # Destroy (collect) it.
    final = bed.run(bed.shop.destroy(vmid))
    print(f"Destroyed: status={final.get('status')} "
          f"at t={final.get('collected_at'):.1f}s")


if __name__ == "__main__":
    main()
