#!/usr/bin/env python
"""The In-VIGO virtual-workspace scenario (Figure 3 walk-through).

A user asks for a "virtual workspace": a VM running a VNC server and a
Web file manager, configured with their identity and home directory.
The warehouse holds a golden image checkpointed after the RedHat +
VNC + file-manager installation (the S-A-B-C prefix), so the PPP's
partial matching clones that image and only executes the residual
actions D-I.

The example then *extends* the live workspace with an extra
application install and publishes the result as a new golden image —
the paper's install-once-share-with-collaborators workflow.

Run:  python examples/invigo_workspace.py
"""

from repro import (
    Action,
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
    build_testbed,
)
from repro.plant.warehouse import GoldenImage
from repro.workloads.invigo import invigo_cached_prefix, invigo_workspace_dag

REDHAT_OS = "linux-redhat-8.0"


def workspace_image() -> GoldenImage:
    """The golden workspace: RedHat + VNC + WFM already installed."""
    return GoldenImage(
        image_id="invigo-workspace",
        vm_type="vmware",
        os=REDHAT_OS,
        hardware=HardwareSpec(memory_mb=32, disk_gb=4.0),
        performed=tuple(invigo_cached_prefix("arijit")),
        memory_state_mb=32.0,
    )


def main() -> None:
    bed = build_testbed(
        seed=7, memory_sizes=(), extra_images=[workspace_image()]
    )

    dag = invigo_workspace_dag(username="arijit")
    print("Client-specified DAG (Figure 3, step 1):")
    for name in dag.topological_sort():
        print(f"  {name}")

    request = CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(os=REDHAT_OS, dag=dag),
        network=NetworkSpec(domain="acis.ufl.edu"),
        client_id="arijit",
        vm_type="vmware",
    )
    ad = bed.run(bed.shop.create(request))
    print(f"\nWorkspace {ad['vmid']} up on {ad['plant']}:")
    print(f"  cached by golden image : {ad['actions_cached']} actions "
          f"(install-redhat, vnc, wfm)")
    print(f"  executed after cloning : {ad['actions_executed']} actions")
    print(f"  VNC display            : {ad.get('vnc_display')}")
    print(f"  clone {ad['clone_time']:.1f}s + configure "
          f"{ad['config_time']:.1f}s")

    # The user installs an application into the live workspace ...
    extended = dag.subdag(dag.actions)  # copy of the full DAG
    extended.add_action(
        Action(
            "install-matlab",
            command="rpm -i {pkg}",
            params={"pkg": "matlab-6.5.rpm"},
        )
    )
    extended.add_edge("start-vnc-server", "install-matlab")
    plant = bed.registry.bind(str(ad["plant"]))
    bed.run(plant.extend(ad["vmid"], extended))
    print("\nExtended the live workspace with install-matlab.")

    # ... and publishes it for collaborators.
    bed.run(bed.shop.destroy(ad["vmid"], commit=True,
                             publish_as="invigo-workspace-matlab"))
    published = bed.warehouse.get("invigo-workspace-matlab")
    print(f"Published {published.image_id!r} with performed actions:")
    for action in published.performed:
        print(f"  {action.name}")

    # A collaborator instantiating the same DAG + matlab now gets a
    # deeper match: zero residual actions beyond identity setup.
    request2 = CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(os=REDHAT_OS, dag=extended),
        network=NetworkSpec(domain="acis.ufl.edu"),
        client_id="collaborator",
        vm_type="vmware",
    )
    ad2 = bed.run(bed.shop.create(request2))
    print(f"\nCollaborator clone {ad2['vmid']}: "
          f"{ad2['actions_cached']} cached / "
          f"{ad2['actions_executed']} executed "
          f"(golden image {ad2['image_id']})")


if __name__ == "__main__":
    main()
