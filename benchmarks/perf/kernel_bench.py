"""Sharded-kernel benchmark: events/sec across shard counts.

Runs the ``kernelbench`` sweep (see
:mod:`repro.experiments.kernelbench`) and appends one record to
``benchmarks/results/BENCH_kernel.json`` so throughput and the
4-shard aggregate speedup are tracked as a trajectory across commits.
The record also carries the determinism cross-check: merged-trace
fingerprints must agree between 1 shard and the highest swept count,
and reproduce across repeats.

Run::

    PYTHONPATH=src python -m benchmarks.perf.kernel_bench          # paper sweep
    PYTHONPATH=src python -m benchmarks.perf.kernel_bench --small  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.kernelbench import run_kernelbench

__all__ = [
    "KERNEL_BENCH_PATH",
    "run_kernel_bench",
    "load_kernel_trajectory",
]

KERNEL_BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_kernel.json"
)

PAPER_SEED = 2004


def run_kernel_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Run the sweep; append the record to the trajectory file."""
    if small:
        result = run_kernelbench(
            seed=PAPER_SEED,
            sites=4,
            shard_counts=(1, 4),
            requests_per_site=40,
        )
    else:
        result = run_kernelbench(
            seed=PAPER_SEED,
            sites=8,
            shard_counts=(1, 4, 8),
            requests_per_site=160,
        )
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    record.update(result.to_record())
    path = out or KERNEL_BENCH_PATH
    trajectory = load_kernel_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    print(result.render())
    return record


def load_kernel_trajectory(path: Optional[Path] = None) -> list:
    """The recorded benchmark trajectory (empty if absent/corrupt)."""
    path = path or KERNEL_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down sweep (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_kernel_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
