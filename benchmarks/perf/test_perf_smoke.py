"""Perf smoke: small workload, regression + speedup guardrails.

Designed to be robust on shared CI hardware: the wall-clock ceiling
is generous (2x the best recorded small-workload run, with an
absolute floor), the parallel-speedup assertion only applies on
multi-core hosts, and the cache assertion is relative (warm load must
beat a fresh simulation), not an absolute time.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.perf.harness import (
    SMALL_RUNS,
    load_trajectory,
    measure_cache,
    measure_kernel,
    measure_suite,
)
from benchmarks.perf.classad_bench import (
    load_classad_trajectory,
    measure_eval_throughput,
)
from benchmarks.perf.matching_bench import (
    load_matching_trajectory,
    measure_matching,
)
from benchmarks.perf.provision_bench import load_provision_trajectory

#: Absolute wall-clock floor (s) below which we never flag a
#: regression — keeps the 2x rule from flaking on noise-sized runs.
_FLOOR_S = 5.0


def _best_recorded(metric: str, workload: str) -> float:
    values = [
        rec[metric]
        for rec in load_trajectory()
        if rec.get("workload") == workload and rec.get(metric)
    ]
    return min(values) if values else 0.0


def test_small_suite_within_regression_budget():
    seq_s, par_s = measure_suite(SMALL_RUNS, seed=7)
    best = _best_recorded("suite_sequential_s", "small")
    budget = max(2.0 * best, _FLOOR_S)
    assert seq_s < budget, (
        f"sequential small suite took {seq_s:.2f}s, "
        f">2x the recorded best ({best:.2f}s)"
    )
    if (os.cpu_count() or 1) >= 2:
        # Fan-out must not be slower than sequential by more than the
        # pool spin-up overhead on a genuinely parallel host.
        assert par_s < max(2.0 * seq_s, _FLOOR_S)


def test_cache_warm_load_beats_simulation(tmp_path):
    cold_s, warm_s = measure_cache(SMALL_RUNS, seed=7, root=tmp_path)
    assert warm_s < cold_s, (
        f"cache hit ({warm_s:.4f}s) not faster than fresh "
        f"simulation ({cold_s:.4f}s)"
    )
    # The warm path is a pickle load; even small workloads beat 3x.
    assert cold_s / warm_s > 3.0


def test_kernel_throughput_floor():
    events, eps = measure_kernel(seed=7, count=16)
    assert events > 500  # the workload actually exercised the kernel
    best = _best_recorded("kernel_events_per_sec", "small")
    if best:
        assert eps > best / 2.0, (
            f"kernel throughput {eps:.0f} ev/s is <half the recorded "
            f"best ({best:.0f} ev/s)"
        )


def test_matching_index_beats_naive_at_smoke_size():
    """Same-run relative guardrail for the matching fast path.

    At 200 images the indexed path clears naive by a wide margin
    locally (>10x); the threshold is conservative for noisy shared
    runners.  The memoized path answers repeat bids from the memo, so
    it must beat even the index.
    """
    point = measure_matching(200)
    assert point["indexed_speedup"] >= 3.0, (
        f"indexed matching only {point['indexed_speedup']}x naive "
        f"at 200 images"
    )
    assert (
        point["memoized_bids_per_sec"] >= point["indexed_bids_per_sec"]
    ), "memoized select slower than the bare index"


def test_matching_throughput_regression_vs_trajectory():
    """Indexed bids/sec must stay within 2x of the recorded best."""
    best = 0.0
    for rec in load_matching_trajectory():
        for point in rec.get("points", []):
            if point.get("images") == 200 and point.get(
                "indexed_bids_per_sec"
            ):
                best = max(best, point["indexed_bids_per_sec"])
    if not best:
        pytest.skip("no recorded small-workload matching trajectory")
    point = measure_matching(200)
    assert point["indexed_bids_per_sec"] > best / 2.0, (
        f"indexed matching {point['indexed_bids_per_sec']:.0f} bids/s "
        f"is <half the recorded best ({best:.0f} bids/s)"
    )


def test_classad_compiled_beats_reparse_interpreter():
    """Same-run relative guardrail for the compiled query engine.

    The acceptance record (paper workload) shows >10x; the smoke
    threshold is conservative for noisy shared runners.  The compiled
    closures must also beat the tree-walking interpreter on the very
    AST they were compiled from.
    """
    point = measure_eval_throughput(reparse_evals=800, fast_evals=30_000)
    assert point["compiled_vs_reparse"] >= 5.0, (
        f"compiled eval only {point['compiled_vs_reparse']}x the "
        f"reparse-per-call interpreter"
    )
    assert point["compiled_vs_interp"] >= 1.2, (
        f"compiled eval only {point['compiled_vs_interp']}x the "
        f"interned interpreter"
    )


def test_classad_regression_vs_trajectory():
    """Compiled evals/sec must stay within 2x of the recorded best,
    and every recorded run must have passed its equivalence checks."""
    records = load_classad_trajectory()
    if not records:
        pytest.skip("no recorded classad trajectory")
    for rec in records:
        assert rec["bid_path"]["equivalent"] is True
        assert rec["discover"]["equivalent"] is True
    best = max(rec["eval"]["compiled_per_sec"] for rec in records)
    point = measure_eval_throughput(reparse_evals=800, fast_evals=30_000)
    assert point["compiled_per_sec"] > best / 2.0, (
        f"compiled eval {point['compiled_per_sec']:.0f}/s is <half "
        f"the recorded best ({best:.0f}/s)"
    )


def test_classad_classes_have_no_instance_dict():
    """The matchmaking hot path must stay ``__slots__``-only.

    Every ``Expression``/``ClassAd``/AST-node instance is churned
    through on each bid; a ``__dict__`` creeping back re-enables a
    per-instance dict alloc on the hottest path in the shop.
    """
    from repro.core import classad as ca

    for cls in (
        ca.ClassAd,
        ca.Expression,
        ca._Scope,
        ca._Parser,
        ca._Literal,
        ca._Ref,
        ca._ListNode,
        ca._Unary,
        ca._Binary,
        ca._Call,
        ca._Ternary,
    ):
        assert hasattr(cls, "__slots__"), f"{cls.__name__} lost __slots__"
        instance = object.__new__(cls)
        assert not hasattr(instance, "__dict__"), (
            f"{cls.__name__} instances carry a __dict__"
        )


def test_hot_sim_classes_have_no_instance_dict():
    """The DES hot path must stay ``__slots__``-only.

    A ``__dict__`` creeping back onto a per-event or per-clone object
    silently costs ~100 bytes and a dict alloc per instance; guard
    the classes the kernel and lines churn through.
    """
    from repro.sim.host import HostStateCache
    from repro.sim.hypervisor import CloneRecord, SimBackend
    from repro.sim.network import _Flow
    from repro.sim.storage import TransferCoalescer, _InflightTransfer
    from repro.sim.trace import TraceEvent

    for cls in (
        _Flow,
        CloneRecord,
        SimBackend,
        TraceEvent,
        HostStateCache,
        TransferCoalescer,
        _InflightTransfer,
    ):
        assert hasattr(cls, "__slots__"), f"{cls.__name__} lost __slots__"
        # A __dict__ creeping into the MRO silently re-enables
        # per-instance dict allocation; instances must not have one.
        instance = object.__new__(cls)
        assert not hasattr(instance, "__dict__"), (
            f"{cls.__name__} instances carry a __dict__"
        )


def test_trace_ring_buffer_allocation_bound():
    """A capacity-bounded tracer must not grow past its ring."""
    from repro.sim.trace import Tracer

    tracer = Tracer(capacity=64)
    for i in range(1000):
        tracer.record(float(i), "cat", "msg")
    assert len(tracer) == 64
    assert tracer.dropped == 1000 - 64
    assert tracer.events[0].time == 1000 - 64


def test_provisioning_stack_beats_baseline_at_smoke_scale():
    """Same-run relative guardrail for the provisioning fast path."""
    from benchmarks.perf.provision_bench import SMALL_PARAMS
    from repro.experiments.loadtest import run_loadtest

    result = run_loadtest(seed=2004, **SMALL_PARAMS)
    top = max(SMALL_PARAMS["rates"])
    assert result.speedup_at(top) >= 1.3, (
        f"full provisioning stack only "
        f"{result.speedup_at(top):.2f}x baseline creates/sec"
    )
    assert result.p95_improvement_at(top) >= 1.5, (
        f"full provisioning stack p95 only "
        f"{result.p95_improvement_at(top):.2f}x better"
    )


def test_provisioning_regression_vs_trajectory():
    """Recorded paper-scale sweep must keep meeting the acceptance bar."""
    records = [
        rec
        for rec in load_provision_trajectory()
        if rec.get("workload") == "paper"
    ]
    if not records:
        pytest.skip("no recorded paper-workload provisioning trajectory")
    latest = records[-1]
    assert latest["throughput_speedup_at_max_rate"] >= 3.0
    assert latest["p95_improvement_at_max_rate"] >= 2.0
    assert latest["determinism_ok"] is True


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="parallel speedup needs >1 CPU"
)
def test_parallel_speedup_on_multicore():
    from repro.experiments.runner import PAPER_RUNS

    seq_s, par_s = measure_suite(PAPER_RUNS, seed=2004)
    assert seq_s / par_s >= 1.5, (
        f"parallel suite speedup only {seq_s / par_s:.2f}x "
        f"({seq_s:.2f}s -> {par_s:.2f}s)"
    )
