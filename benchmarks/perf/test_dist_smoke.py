"""Distribution-tree smoke: small ladder, flatness + determinism.

Same spirit as ``test_perf_smoke``: relative, same-run guardrails
sized for noisy shared CI hardware, plus a trajectory check that the
recorded paper-scale ladder keeps meeting the ISSUE 7 acceptance bar
(tree p95 at 512 hosts ≤ 1.5x its 8-host value, NFS star ≥ 5x).
"""

from __future__ import annotations

import pytest

from benchmarks.perf.distribution_bench import (
    SMALL_PARAMS,
    load_distribution_trajectory,
)
from repro.experiments.disttree import run_disttree

#: Small-ladder flatness ceiling: 8 -> 64 hosts adds ~3 tree levels,
#: so the tree's p95 must stay near-flat while the star scales ~8x.
_SMALL_TREE_CEILING = 1.4
_SMALL_STAR_FLOOR = 2.5


def test_tree_flat_while_star_grows_at_smoke_scale():
    result = run_disttree(seed=2004, **SMALL_PARAMS)
    tree = result.p95_growth("tree")
    star = result.p95_growth("nfs-star")
    assert tree <= _SMALL_TREE_CEILING, (
        f"tree p95 grew {tree:.2f}x over the small ladder "
        f"(ceiling {_SMALL_TREE_CEILING}x)"
    )
    assert star >= _SMALL_STAR_FLOOR, (
        f"NFS star only grew {star:.2f}x — the bottleneck the tree "
        f"removes is not being reproduced"
    )
    # The tree must actually shed warehouse traffic: one seed transfer
    # per rung, not one per host.
    for point in result.points["tree"]:
        assert point.nfs_seeds < point.hosts
        assert point.peer_hops >= point.hosts - point.nfs_seeds
        assert point.failed == 0


def test_disttree_fingerprints_deterministic():
    top = max(SMALL_PARAMS["hosts"])
    first = run_disttree(seed=2004, hosts=(top,))
    again = run_disttree(seed=2004, hosts=(top,))
    for variant in ("nfs-star", "tree"):
        assert (
            first.point(variant, top).fingerprint
            == again.point(variant, top).fingerprint
        )


def test_distribution_regression_vs_trajectory():
    """Recorded paper-scale ladder must keep meeting the acceptance bar."""
    records = [
        rec
        for rec in load_distribution_trajectory()
        if rec.get("workload") == "paper"
    ]
    if not records:
        pytest.skip("no recorded paper-workload distribution trajectory")
    latest = records[-1]
    assert latest["tree_p95_growth"] <= 1.5
    assert latest["star_p95_growth"] >= 5.0
    assert latest["determinism_ok"] is True
