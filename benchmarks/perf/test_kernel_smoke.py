"""Perf smoke for the sharded kernel: speedup + determinism guardrails.

Same philosophy as :mod:`benchmarks.perf.test_perf_smoke`: the
same-run assertions are relative (sharded vs single-shard in the same
process on the same host), with thresholds conservative enough for
noisy shared CI runners; absolute numbers are only checked against
the recorded trajectory, and skipped when no trajectory exists yet.
"""

from __future__ import annotations

import pytest

from benchmarks.perf.kernel_bench import load_kernel_trajectory
from repro.experiments.kernelbench import run_kernelbench

#: Small same-run sweep: 4 sites so a 4-shard run is one site per
#: worker, few enough requests to finish in seconds.
_SMOKE = dict(
    seed=7,
    sites=4,
    shard_counts=(1, 4),
    requests_per_site=24,
    determinism_requests=12,
    deadline_s=120.0,
)


@pytest.fixture(scope="module")
def smoke_sweep():
    return run_kernelbench(**_SMOKE)


def test_sharded_agg_throughput_beats_single_shard(smoke_sweep):
    """Aggregate (per-CPU-second) throughput must scale with shards.

    The acceptance record (paper workload) shows >2.5x at 4 shards;
    the smoke workload is smaller so sync waves weigh more — 1.5x is
    the flake-safe floor.  ``agg ev/s`` sums events per CPU-second
    over shards, so it holds even on a single-core runner where
    wall-clock cannot speed up.
    """
    speedup = smoke_sweep.agg_speedup(4)
    assert speedup >= 1.5, (
        f"4-shard aggregate throughput only {speedup:.2f}x the "
        f"single-shard kernel at smoke scale"
    )


def test_sharded_run_is_deterministic(smoke_sweep):
    """Merged-trace fingerprints must agree across shard counts and
    reproduce across repeats of the same (seed, partition)."""
    assert smoke_sweep.deterministic, (
        f"fingerprints diverged: {smoke_sweep.fingerprints} "
        f"repeat={smoke_sweep.repeat_fingerprint}"
    )
    assert smoke_sweep.point(1).events > 1000, (
        "smoke workload too small to exercise the kernel"
    )


def test_kernel_regression_vs_trajectory(smoke_sweep):
    """Recorded sweeps must keep meeting the acceptance bar.

    Every recorded run must have passed its determinism cross-check,
    paper-workload records must hold the 2.5x 4-shard aggregate
    speedup from the acceptance criteria, and the same-run smoke
    single-shard events/sec must stay within 2x of the recorded best
    for comparable (single-core-normalized) throughput.
    """
    records = load_kernel_trajectory()
    if not records:
        pytest.skip("no recorded kernel-bench trajectory")
    for rec in records:
        assert rec["deterministic"] is True, (
            f"recorded sweep at {rec.get('timestamp')} failed its "
            f"determinism cross-check"
        )
    paper = [rec for rec in records if rec.get("workload") == "paper"]
    if paper:
        latest = paper[-1]
        assert latest["agg_speedups"]["4"] >= 2.5
    best = max(
        (
            point["agg_events_per_sec"]
            for rec in records
            for point in rec.get("points", [])
            if point.get("shards") == 1
        ),
        default=0.0,
    )
    if best:
        eps = smoke_sweep.point(1).agg_events_per_sec
        assert eps > best / 2.0, (
            f"single-shard kernel {eps:.0f} ev/s is <half the "
            f"recorded best ({best:.0f} ev/s)"
        )
