"""Classad query-engine benchmark: compiled vs interpreted evaluation.

Measures the three layers ISSUE 4 optimizes, appending one record to
``benchmarks/results/BENCH_classad.json``:

* **expression evaluation** — evals/sec of a representative bid-path
  expression mix for (a) the pre-PR behaviour: re-parse the text and
  tree-walk it every call, (b) the interned AST interpreted, and
  (c) the interned compiled closures (the default engine);
* **end-to-end bid path** — wall-clock of a creation workload with
  matchmaking ``requirements`` on the paper testbed, compiled vs
  interpreter (``use_interpreter``), with a determinism check that
  both engines produce the identical creation log;
* **registry discovery** — queries/sec against a populated service
  registry with and without the attribute-index pre-filter, with an
  equivalence check.

Every section verifies engine agreement on its inputs before timing.

Run::

    PYTHONPATH=src python -m benchmarks.perf.classad_bench          # full
    PYTHONPATH=src python -m benchmarks.perf.classad_bench --small  # CI smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import random
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.classad import (
    ClassAd,
    Expression,
    _Parser,
    _Scope,
    _tokenize,
    clear_parse_cache,
    parse_cache_info,
    use_interpreter,
)
from repro.shop.registry import ServiceRegistry
from repro.sim.cluster import build_testbed
from repro.workloads.requests import request_stream

__all__ = [
    "CLASSAD_BENCH_PATH",
    "measure_eval_throughput",
    "measure_bid_path",
    "measure_discover",
    "run_classad_bench",
    "load_classad_trajectory",
]

CLASSAD_BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_classad.json"
)

PAPER_SEED = 2004

#: The expression mix: shapes the shop/broker path actually evaluates.
EVAL_EXPRESSIONS = (
    'other.kind == "vmplant" && other.networks_free >= 1'
    " && other.active_vms < 8",
    "other.host_memory_mb - other.committed_mb >= 256",
    'member("vmware", other.vm_types) && other.max_vms != 0',
    "other.active_vms < 4 ? true : other.networks_free > 2",
    'other.kind == "vmplant" && other.name != "p-3"'
    " && other.committed_mb / other.host_memory_mb < 1",
)

#: Requirements rotated through the bid-path workload.
BID_REQUIREMENTS = (
    'other.kind == "vmplant" && other.networks_free >= 0',
    "other.active_vms < 64 && other.host_memory_mb >= 256",
    'member("vmware", other.vm_types)',
    None,  # unconstrained requests stay on the fast path too
)


def _plant_like_ad(i: int = 0) -> ClassAd:
    return ClassAd(
        {
            "name": f"p-{i}",
            "kind": "vmplant",
            "vm_types": ["vmware"],
            "host_memory_mb": 1536,
            "committed_mb": 64 * (i % 8),
            "active_vms": i % 8,
            "networks_free": 4 - (i % 4),
            "max_vms": -1,
        }
    )


def _request_like_ad() -> ClassAd:
    return ClassAd(
        {
            "isa": "x86",
            "memory_mb": 64,
            "disk_gb": 4.0,
            "cpus": 1,
            "client": "bench",
            "domain": "local",
            "os": "linux-mandrake-8.1",
        }
    )


def _reparse_interpret(text: str, ad: ClassAd, other: ClassAd):
    """The pre-PR ``evaluate()`` cost model: parse + tree-walk."""
    parser = _Parser(_tokenize(text))
    ast = parser.parse_expr()
    return ast.eval(_Scope(ad, other))


def measure_eval_throughput(
    reparse_evals: int = 4000, fast_evals: int = 200_000
) -> Dict[str, float]:
    """Evals/sec of the expression mix for all three engine paths."""
    ads = [_plant_like_ad(i) for i in range(8)]
    request_ad = _request_like_ad()
    exprs = [Expression(text) for text in EVAL_EXPRESSIONS]

    # Engine agreement on the full cross-product before timing.
    for expr in exprs:
        for other in ads:
            compiled = expr.evaluate_compiled(request_ad, other)
            interp = expr.evaluate_interpreted(request_ad, other)
            assert type(compiled) is type(interp) and compiled == interp
            assert (
                _reparse_interpret(expr.text, request_ad, other) == interp
            )

    n_combos = len(exprs)

    t0 = time.perf_counter()
    for i in range(reparse_evals):
        expr = exprs[i % n_combos]
        _reparse_interpret(expr.text, request_ad, ads[i % len(ads)])
    reparse_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(fast_evals):
        exprs[i % n_combos].evaluate_interpreted(
            request_ad, ads[i % len(ads)]
        )
    interp_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(fast_evals):
        exprs[i % n_combos].evaluate_compiled(
            request_ad, ads[i % len(ads)]
        )
    compiled_wall = time.perf_counter() - t0

    reparse = reparse_evals / reparse_wall if reparse_wall else float("inf")
    interp = fast_evals / interp_wall if interp_wall else float("inf")
    compiled = fast_evals / compiled_wall if compiled_wall else float("inf")
    return {
        "reparse_interp_per_sec": round(reparse, 1),
        "interned_interp_per_sec": round(interp, 1),
        "compiled_per_sec": round(compiled, 1),
        "compiled_vs_reparse": round(compiled / reparse, 1),
        "compiled_vs_interp": round(compiled / interp, 2),
    }


def _bid_workload(requests: int, seed: int, memory_mb: int = 64):
    """One creation run with matchmaking requirements; returns the log."""
    bed = build_testbed(seed=seed)
    stream = []
    for i, request in enumerate(request_stream(memory_mb, requests)):
        requirements = BID_REQUIREMENTS[i % len(BID_REQUIREMENTS)]
        if requirements is not None:
            request = dataclasses.replace(
                request, requirements=requirements
            )
        stream.append(request)

    def client():
        for request in stream:
            yield from bed.shop.create(request)

    t0 = time.perf_counter()
    bed.run(client())
    wall = time.perf_counter() - t0
    return wall, bed.shop.creation_log, bed.env.now


def measure_bid_path(
    requests: int = 48, seed: int = PAPER_SEED, repeats: int = 3
) -> Dict[str, object]:
    """Wall-clock of the requirements-bearing creation workload,
    compiled engine vs interpreter, plus a determinism check.

    The simulation is deterministic, so each engine's wall-clock is
    the best of ``repeats`` identical runs — the DES dominates this
    workload and single runs are too jittery on shared hardware.
    """
    interp_wall = compiled_wall = float("inf")
    interp_log = interp_now = None
    compiled_log = compiled_now = None
    for _ in range(repeats):
        try:
            use_interpreter(True)
            wall, interp_log, interp_now = _bid_workload(requests, seed)
        finally:
            use_interpreter(False)
        interp_wall = min(interp_wall, wall)
        wall, compiled_log, compiled_now = _bid_workload(requests, seed)
        compiled_wall = min(compiled_wall, wall)
    return {
        "requests": requests,
        "interpreter_s": round(interp_wall, 4),
        "compiled_s": round(compiled_wall, 4),
        "speedup": round(interp_wall / compiled_wall, 2)
        if compiled_wall
        else None,
        "equivalent": (
            compiled_log == interp_log and compiled_now == interp_now
        ),
    }


def measure_discover(
    entries: int = 400, queries: int = 300, seed: int = PAPER_SEED
) -> Dict[str, object]:
    """Registry discovery throughput with/without the index prefilter."""
    rng = random.Random(seed)
    registry = ServiceRegistry()
    for i in range(entries):
        name = f"plant-{i:04d}"
        registry.publish(
            name,
            "vmplant",
            object(),
            description=ClassAd(
                {
                    "name": name,
                    "kind": "vmplant",
                    "os": rng.choice(["linux", "bsd", "solaris"]),
                    "vm_type": rng.choice(["vmware", "uml"]),
                    "active_vms": rng.randrange(0, 12),
                    "networks_free": rng.randrange(0, 5),
                }
            ),
        )
    query_texts = [
        'other.os == "linux" && other.vm_type == "uml"',
        'other.vm_type == "vmware" && other.networks_free > 2',
        'other.os == "bsd" && other.active_vms < 3',
        'other.name == "plant-0007"',
    ]
    compiled = [Expression(text) for text in query_texts]
    for expr in compiled:  # equivalence before timing
        fast = registry.discover("vmplant", expr)
        slow = registry.discover("vmplant", expr, prefilter=False)
        assert [e.name for e in fast] == [e.name for e in slow]

    def sweep(prefilter: bool) -> float:
        t0 = time.perf_counter()
        for i in range(queries):
            registry.discover(
                "vmplant",
                compiled[i % len(compiled)],
                prefilter=prefilter,
            )
        wall = time.perf_counter() - t0
        return queries / wall if wall else float("inf")

    full = sweep(False)
    indexed = sweep(True)
    return {
        "entries": entries,
        "queries": queries,
        "full_scan_per_sec": round(full, 1),
        "prefilter_per_sec": round(indexed, 1),
        "speedup": round(indexed / full, 2) if full else None,
        "equivalent": True,
    }


def run_classad_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Run all three sections; append the record to the trajectory."""
    clear_parse_cache()
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "eval": measure_eval_throughput(
            reparse_evals=1500 if small else 4000,
            fast_evals=60_000 if small else 200_000,
        ),
        "bid_path": measure_bid_path(requests=16 if small else 48),
        "discover": measure_discover(
            entries=150 if small else 400,
            queries=120 if small else 300,
        ),
        "parse_cache": parse_cache_info(),
    }
    path = out or CLASSAD_BENCH_PATH
    trajectory = load_classad_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return record


def load_classad_trajectory(path: Optional[Path] = None) -> list:
    """The recorded classad trajectory (empty if absent/corrupt)."""
    path = path or CLASSAD_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down workload (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_classad_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
