"""Performance micro-harness: suite wall-clock + DES events/sec.

Times the three things the performance layer optimizes and records a
trajectory so regressions are visible across commits:

* **sequential vs. parallel** wall-clock of the paper creation suite
  (fan-out only helps on multi-core hosts; both are recorded);
* **cache cold vs. warm** wall-clock of the same suite through the
  on-disk result cache;
* **kernel throughput** — events/sec of the DES kernel under the
  fig4-style creation workload (event count taken from the kernel's
  own monotonically increasing event id).

Each invocation appends one record to
``benchmarks/results/BENCH_parallel_runner.json``, then runs the
matching-throughput sweep (``benchmarks.perf.matching_bench``) and
the provisioning loadtest (``benchmarks.perf.provision_bench``), and
the classad query-engine bench (``benchmarks.perf.classad_bench``),
which append their own records to ``BENCH_matching.json``,
``BENCH_provisioning.json``, and ``BENCH_classad.json``.

Run::

    PYTHONPATH=src python -m benchmarks.perf.harness          # paper workload
    PYTHONPATH=src python -m benchmarks.perf.harness --small  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from benchmarks.perf.classad_bench import run_classad_bench
from benchmarks.perf.matching_bench import run_matching_bench
from benchmarks.perf.provision_bench import run_provision_bench
from repro.experiments.cache import ResultCache
from repro.experiments.runner import PAPER_RUNS, run_creation_suite
from repro.sim.cluster import build_testbed
from repro.workloads.requests import request_stream

__all__ = [
    "SMALL_RUNS",
    "measure_suite",
    "measure_cache",
    "measure_kernel",
    "run_harness",
    "BENCH_PATH",
]

BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_parallel_runner.json"
)

#: Scaled-down plan for smoke runs: same shape, ~10x less work.
SMALL_RUNS: Dict[int, tuple] = {
    32: (12, 0.05),
    64: (12, 0.02),
    256: (6, 0.0),
}

PAPER_SEED = 2004


def measure_suite(
    runs: Dict[int, tuple], seed: int = PAPER_SEED
) -> Tuple[float, float]:
    """(sequential_s, parallel_s) wall-clock for the creation suite."""
    t0 = time.perf_counter()
    run_creation_suite(seed=seed, runs=runs)
    seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_creation_suite(seed=seed, runs=runs, parallel=True)
    par = time.perf_counter() - t0
    return seq, par


def measure_cache(
    runs: Dict[int, tuple],
    seed: int = PAPER_SEED,
    root: Optional[Path] = None,
) -> Tuple[float, float]:
    """(cold_s, warm_s) wall-clock through a fresh result cache."""
    if root is not None:
        cache = ResultCache(root=root, enabled=True)
        t0 = time.perf_counter()
        run_creation_suite(seed=seed, runs=runs, cache=cache)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_creation_suite(seed=seed, runs=runs, cache=cache)
        warm = time.perf_counter() - t0
        return cold, warm
    with tempfile.TemporaryDirectory() as tmp:
        return measure_cache(runs, seed=seed, root=Path(tmp))


def measure_kernel(
    seed: int = PAPER_SEED, count: int = 64, memory_mb: int = 64
) -> Tuple[int, float]:
    """(events, events_per_sec) for a fig4-style creation stream."""
    bed = build_testbed(seed=seed)

    def client():
        for request in request_stream(memory_mb, count):
            yield from bed.shop.create(request)

    t0 = time.perf_counter()
    bed.run(client())
    wall = time.perf_counter() - t0
    events = bed.env._eid
    return events, events / wall if wall > 0 else float("inf")


def run_harness(
    small: bool = False,
    out: Optional[Path] = None,
    kernel_count: Optional[int] = None,
    matching: bool = True,
    provisioning: bool = True,
    classad: bool = True,
) -> dict:
    """Run all measurements; append the record to the trajectory file."""
    runs = SMALL_RUNS if small else PAPER_RUNS
    seq_s, par_s = measure_suite(runs)
    cold_s, warm_s = measure_cache(runs)
    if kernel_count is None:
        kernel_count = 16 if small else 64
    events, eps = measure_kernel(count=kernel_count)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "suite_sequential_s": round(seq_s, 4),
        "suite_parallel_s": round(par_s, 4),
        "parallel_speedup": round(seq_s / par_s, 2) if par_s else None,
        "cache_cold_s": round(cold_s, 4),
        "cache_warm_s": round(warm_s, 5),
        "cache_speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "kernel_events": events,
        "kernel_events_per_sec": round(eps, 1),
    }
    path = out or BENCH_PATH
    trajectory = load_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    if matching:
        # Separate trajectory file: the matching sweep has its own
        # regression check in CI (see test_perf_smoke.py).
        record["matching"] = run_matching_bench(small=small)
    if provisioning:
        record["provisioning"] = run_provision_bench(small=small)
    if classad:
        record["classad"] = run_classad_bench(small=small)
    return record


def load_trajectory(path: Optional[Path] = None) -> list:
    """The recorded benchmark trajectory (empty if absent/corrupt)."""
    path = path or BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down workload (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_harness(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
