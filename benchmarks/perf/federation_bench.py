"""Federation benchmark: control-plane bids/sec across site counts.

Runs the ``federation`` sweep (see
:mod:`repro.experiments.federation`) and appends one record to
``benchmarks/results/BENCH_federation.json`` so aggregate bids/sec,
create p95 latency and the 4-site speedup are tracked as a trajectory
across commits.  Each record carries the determinism recheck: the
largest grid's merged-trace fingerprint must agree between 1 shard
and one-shard-per-site, and reproduce across repeats.

Run::

    PYTHONPATH=src python -m benchmarks.perf.federation_bench          # paper sweep
    PYTHONPATH=src python -m benchmarks.perf.federation_bench --small  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.federation import run_federation

__all__ = [
    "FEDERATION_BENCH_PATH",
    "run_federation_bench",
    "load_federation_trajectory",
]

FEDERATION_BENCH_PATH = Path(__file__).resolve().parent.parent / (
    "results"
) / "BENCH_federation.json"

PAPER_SEED = 2004


def run_federation_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Run the sweep; append the record to the trajectory file."""
    if small:
        result = run_federation(
            seed=PAPER_SEED,
            site_counts=(1, 4),
            cross_fractions=(0.0, 0.2),
            plants_per_site=4,
            requests_per_site=40,
            determinism_requests=16,
        )
    else:
        result = run_federation(
            seed=PAPER_SEED,
            site_counts=(1, 4, 16),
            cross_fractions=(0.0, 0.1, 0.3),
            plants_per_site=8,
            requests_per_site=160,
        )
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    record.update(result.to_record())
    path = out or FEDERATION_BENCH_PATH
    trajectory = load_federation_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    print(result.render())
    return record


def load_federation_trajectory(path: Optional[Path] = None) -> list:
    """The recorded benchmark trajectory (empty if absent/corrupt)."""
    path = path or FEDERATION_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down sweep (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_federation_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
