"""Image-distribution benchmark: the disttree ladder on record.

Runs :func:`repro.experiments.disttree.run_disttree` — a same-image
broadcast burst (one VM per host) at each rung of a fleet-size ladder,
with delivery wired as the all-off NFS star and as the peer broadcast
tree — and appends one record to
``benchmarks/results/BENCH_distribution.json``.

Headline metrics:

* ``tree_p95_growth`` — tree-mode creation p95 at the top rung over
  its value at the bottom rung (the flatness figure; ISSUE 7
  acceptance: ≤ 1.5 over 8 → 512 hosts);
* ``star_p95_growth`` — the same ratio for the NFS-star baseline
  (acceptance: ≥ 5, i.e. the bottleneck being engineered away is
  actually present).

Every invocation re-runs both variants at the top rung and
cross-checks the per-host latency fingerprints against the sweep's:
the same seed must reproduce bit-identical results or the record is
refused.

Run::

    PYTHONPATH=src python -m benchmarks.perf.distribution_bench          # paper ladder 8->512
    PYTHONPATH=src python -m benchmarks.perf.distribution_bench --small  # CI smoke 8->64
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.disttree import VARIANTS, run_disttree

__all__ = [
    "DISTRIBUTION_BENCH_PATH",
    "PAPER_PARAMS",
    "SMALL_PARAMS",
    "run_distribution_bench",
    "load_distribution_trajectory",
]

DISTRIBUTION_BENCH_PATH = Path(__file__).resolve().parent.parent / (
    "results"
) / "BENCH_distribution.json"

PAPER_SEED = 2004

#: Full ladder (ISSUE 7 acceptance: tree p95 at 512 hosts ≤ 1.5x its
#: 8-host value while the NFS star grows ≥ 5x).
PAPER_PARAMS = {"hosts": (8, 32, 128, 512), "fanout": 2}
#: Scaled-down ladder for CI smoke runs.
SMALL_PARAMS = {"hosts": (8, 64), "fanout": 2}


def run_distribution_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Run the ladder; verify determinism; append to the trajectory."""
    params = SMALL_PARAMS if small else PAPER_PARAMS
    t0 = time.perf_counter()
    result = run_disttree(seed=PAPER_SEED, **params)
    wall = time.perf_counter() - t0
    top = max(params["hosts"])

    # Result-equivalence cross-check: both variants re-run at the top
    # rung must reproduce the sweep bit-identically.
    recheck = run_disttree(
        seed=PAPER_SEED, hosts=(top,), fanout=params["fanout"]
    )
    for variant in VARIANTS:
        first = result.point(variant, top).fingerprint
        again = recheck.point(variant, top).fingerprint
        if first != again:
            raise AssertionError(
                f"non-deterministic disttree: {variant}@{top} gave "
                f"{first} then {again}"
            )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "hosts": list(params["hosts"]),
        "fanout": params["fanout"],
        "wall_s": round(wall, 2),
        "points": [
            p.as_dict()
            for pts in result.points.values()
            for p in pts
        ],
        "tree_p95_growth": round(result.p95_growth("tree"), 3),
        "star_p95_growth": round(result.p95_growth("nfs-star"), 3),
        "determinism_ok": True,
    }
    path = out or DISTRIBUTION_BENCH_PATH
    trajectory = load_distribution_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return record


def load_distribution_trajectory(path: Optional[Path] = None) -> list:
    """The recorded distribution trajectory (empty if absent/corrupt)."""
    path = path or DISTRIBUTION_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down ladder (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_distribution_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
