"""Perf smoke for the grid resilience ladder.

Same philosophy as :mod:`benchmarks.perf.test_workload_smoke`:
same-run assertions are structural (monotone ladder, exact
accounting, zero leaks, shard-invariant fingerprints); absolute
numbers are only checked against the recorded trajectory, and
skipped when no trajectory exists yet.
"""

from __future__ import annotations

import pytest

from benchmarks.perf.megachaos_bench import load_megachaos_trajectory
from repro.experiments.megachaos import run_megachaos

#: Small same-run ladder: finishes in seconds on a loaded CI runner.
_SMOKE = dict(
    seed=7,
    sites=2,
    shards=2,
    requests_per_site=60,
    blackout_at=40.0,
    blackout_s=40.0,
    shed_depth=64,
    preempt_depth=48,
    det_shard_counts=(1, 2),
    determinism_requests=24,
    deadline_s=300.0,
)


@pytest.fixture(scope="module")
def ladder():
    return run_megachaos(**_SMOKE)


def test_ladder_is_monotone_over_faulted_rungs(ladder):
    """Each compensation layer may only improve availability."""
    assert ladder.ladder_monotone, ladder.availability_ladder()


def test_faults_actually_fire(ladder):
    assert ladder.point("none").faults_applied == 0
    for rung in ("faults", "failover", "admission"):
        assert ladder.point(rung).faults_applied >= 1, rung


def test_every_arrival_accounted_on_every_rung(ladder):
    """arrivals == ok + failed + shed, exactly, per rung."""
    expected = _SMOKE["sites"] * _SMOKE["requests_per_site"]
    for p in ladder.points:
        assert p.arrivals == expected
        assert p.accounted, (p.rung, p.arrivals, p.ok, p.failed, p.shed)


def test_zero_leaks_at_grid_scope(ladder):
    """The six-dimension audit must be all-zero after drain."""
    for p in ladder.points:
        assert not p.leaked, (p.rung, p.leaks)


def test_deterministic_under_faults_and_admission(ladder):
    """Fingerprints and merged summary signatures identical across
    shard counts with every chaos knob enabled."""
    assert ladder.deterministic, (
        ladder.fingerprints,
        ladder.det_signatures,
        ladder.repeat_fingerprint,
    )


def test_megachaos_regression_vs_trajectory(ladder):
    """Recorded ladders must keep meeting the acceptance bar:
    monotone, deterministic, leak-free, and — for the paper rung —
    grid availability >= 0.9 with failover + admission on."""
    records = load_megachaos_trajectory()
    if not records:
        pytest.skip("no recorded megachaos-bench trajectory")
    for rec in records:
        assert rec["ladder_monotone"] is True, rec.get("timestamp")
        assert rec["deterministic"] is True, rec.get("timestamp")
        assert rec["leaked"] is False, rec.get("timestamp")
        if rec.get("workload") == "paper":
            final = [
                p for p in rec["points"] if p["rung"] == "admission"
            ]
            assert final and final[0]["availability"] >= 0.9
