"""Perf smoke for the federated control plane: scaling + determinism.

Same philosophy as :mod:`benchmarks.perf.test_kernel_smoke`: same-run
assertions are relative (multi-site vs single-site in the same
process on the same host) with flake-safe thresholds; absolute
numbers are only checked against the recorded trajectory, and skipped
when no trajectory exists yet.
"""

from __future__ import annotations

import pytest

from benchmarks.perf.federation_bench import load_federation_trajectory
from repro.experiments.federation import percentile, run_federation

#: Small same-run sweep: 4 sites, one worker per site, few enough
#: requests to finish in seconds on a loaded CI runner.
_SMOKE = dict(
    seed=7,
    site_counts=(1, 4),
    cross_fractions=(0.0, 0.2),
    plants_per_site=4,
    requests_per_site=24,
    determinism_requests=12,
    deadline_s=180.0,
)


@pytest.fixture(scope="module")
def smoke_sweep():
    return run_federation(**_SMOKE)


def test_federated_bids_scale_with_sites(smoke_sweep):
    """Aggregate bids/sec must scale with the site count.

    The acceptance record (paper workload) shows >=2x at 4 sites; the
    smoke workload is smaller so per-shard CPU measurements are
    noisier — 1.5x is the flake-safe floor.  Bids/sec sums each
    shard's site-local bids over its own CPU-seconds, so the bound
    holds even on a single-core runner.
    """
    speedup = smoke_sweep.bids_speedup(4, 0.0)
    assert speedup >= 1.5, (
        f"4-site aggregate bid rate only {speedup:.2f}x the "
        f"single-site control plane at smoke scale"
    )


def test_federation_run_is_deterministic(smoke_sweep):
    """Merged-trace fingerprints must agree across shard counts and
    reproduce across repeats of the same (seed, partition)."""
    assert smoke_sweep.deterministic, (
        f"fingerprints diverged: {smoke_sweep.fingerprints} "
        f"repeat={smoke_sweep.repeat_fingerprint}"
    )


def test_cross_site_traffic_actually_crosses(smoke_sweep):
    """The cross-fraction sweep must exercise the spill-over path —
    spills sent, acknowledged, and completed within the deadline —
    while the zero-fraction run stays entirely site-local."""
    crossing = smoke_sweep.point(4, 0.2)
    assert crossing.spills_sent > 0
    assert crossing.spilled_ok > 0
    assert crossing.spill_timeout == 0
    local_only = smoke_sweep.point(4, 0.0)
    assert local_only.spills_sent == 0
    assert local_only.created == 4 * _SMOKE["requests_per_site"]


def test_percentile_helper():
    assert percentile([], 95.0) == 0.0
    assert percentile([3.0], 95.0) == 3.0
    values = list(range(1, 101))
    assert percentile(values, 50.0) == 50
    assert percentile(values, 95.0) == 95


def test_federation_regression_vs_trajectory(smoke_sweep):
    """Recorded sweeps must keep meeting the acceptance bar.

    Every recorded run must have passed its determinism recheck,
    paper-workload records must hold the 2x 4-site bids/sec speedup
    from the acceptance criteria, and the same-run single-site bid
    rate must stay within 2x of the recorded best.
    """
    records = load_federation_trajectory()
    if not records:
        pytest.skip("no recorded federation-bench trajectory")
    for rec in records:
        assert rec["deterministic"] is True, (
            f"recorded sweep at {rec.get('timestamp')} failed its "
            f"determinism recheck"
        )
    paper = [rec for rec in records if rec.get("workload") == "paper"]
    if paper:
        latest = paper[-1]
        assert latest["bids_speedups"]["4x0"] >= 2.0
    best = max(
        (
            point["agg_bids_per_sec"]
            for rec in records
            for point in rec.get("points", [])
            if point.get("sites") == 1 and point.get("cross_fraction") == 0.0
        ),
        default=0.0,
    )
    if best:
        bps = smoke_sweep.point(1, 0.0).agg_bids_per_sec
        assert bps > best / 2.0, (
            f"single-site control plane {bps:.0f} bids/s is <half "
            f"the recorded best ({best:.0f} bids/s)"
        )
