"""Workload benchmark: trace-driven megaload requests/sec by shards.

Runs the ``megaload`` sweep (see
:mod:`repro.experiments.megaload`) and appends one record to
``benchmarks/results/BENCH_workload.json`` so sustained requests/sec
(wall and per-CPU aggregate), latency quantiles from the merged
streaming sketches, and peak worker RSS are tracked as a trajectory
across commits.  Each record carries both megaload invariants: the
merged-trace fingerprint is identical across shard counts and
repeats, and the merged per-site summary state is bit-identical at
every shard count.

Run::

    PYTHONPATH=src python -m benchmarks.perf.workload_bench            # paper sweep
    PYTHONPATH=src python -m benchmarks.perf.workload_bench --small    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.workload_bench --million  # 1M-request rung
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.megaload import run_megaload

__all__ = [
    "WORKLOAD_BENCH_PATH",
    "run_workload_bench",
    "load_workload_trajectory",
]

WORKLOAD_BENCH_PATH = Path(__file__).resolve().parent.parent / (
    "results"
) / "BENCH_workload.json"

PAPER_SEED = 2004

#: The three rungs: (sites, shard_counts, requests_per_site).
RUNGS = {
    "small": (4, (1, 4), 100),
    "paper": (8, (1, 4, 8), 2000),
    # 16 x 62500 = 1,000,000 requests; one site per shard.  Streaming
    # sketches + lazy traces keep every worker's RSS flat, which is
    # the number this rung exists to record.
    "million": (16, (16,), 62_500),
}


def run_workload_bench(
    workload: str = "paper", out: Optional[Path] = None
) -> dict:
    """Run one rung; append the record to the trajectory file."""
    sites, shard_counts, requests = RUNGS[workload]
    result = run_megaload(
        seed=PAPER_SEED,
        sites=sites,
        shard_counts=shard_counts,
        requests_per_site=requests,
        determinism_requests=40 if workload != "small" else 16,
        deadline_s=None,
        trace_capacity=100_000,
    )
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workload": workload,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    record.update(result.to_record())
    path = out or WORKLOAD_BENCH_PATH
    trajectory = load_workload_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    print(result.render())
    return record


def load_workload_trajectory(path: Optional[Path] = None) -> list:
    """The recorded benchmark trajectory (empty if absent/corrupt)."""
    path = path or WORKLOAD_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down sweep (CI smoke)",
    )
    parser.add_argument(
        "--million",
        action="store_true",
        help="the 1,000,000-request rung (16 sites x 62500)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    if args.small and args.million:
        parser.error("--small and --million are mutually exclusive")
    workload = (
        "small" if args.small else "million" if args.million else "paper"
    )
    record = run_workload_bench(workload=workload, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
