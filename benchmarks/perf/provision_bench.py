"""Provisioning-throughput benchmark: the loadtest sweep on record.

Runs :func:`repro.experiments.loadtest.run_loadtest` — open-loop
Poisson arrivals against the simulated site with the provisioning
feature stacks ablated (baseline / host cache / +coalescing /
+speculative pools) — and appends one record to
``benchmarks/results/BENCH_provisioning.json``.

Every invocation first re-runs the baseline point at the top arrival
rate and cross-checks its per-request latency fingerprint against the
sweep's: the same seed must reproduce bit-identical results, or the
record is refused (simulated time must not depend on host state).

Run::

    PYTHONPATH=src python -m benchmarks.perf.provision_bench          # paper workload
    PYTHONPATH=src python -m benchmarks.perf.provision_bench --small  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.loadtest import run_loadtest

__all__ = [
    "PROVISION_BENCH_PATH",
    "PAPER_PARAMS",
    "SMALL_PARAMS",
    "run_provision_bench",
    "load_provision_trajectory",
]

PROVISION_BENCH_PATH = Path(__file__).resolve().parent.parent / (
    "results"
) / "BENCH_provisioning.json"

PAPER_SEED = 2004

#: Full sweep (ISSUE 3 acceptance: ≥3x creates/sec and ≥2x lower p95
#: at the top rate with everything on).
PAPER_PARAMS = {"requests": 64, "rates": (0.05, 0.2, 1.2), "n_plants": 8}
#: Scaled-down sweep for CI smoke runs.
SMALL_PARAMS = {"requests": 16, "rates": (0.05, 0.4), "n_plants": 4}


def run_provision_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Run the sweep; verify determinism; append to the trajectory."""
    params = SMALL_PARAMS if small else PAPER_PARAMS
    t0 = time.perf_counter()
    result = run_loadtest(seed=PAPER_SEED, **params)
    wall = time.perf_counter() - t0
    top = max(params["rates"])

    # Result-equivalence cross-check: the extreme ablations re-run at
    # the top rate must reproduce the sweep bit-identically.
    recheck = run_loadtest(
        seed=PAPER_SEED,
        requests=params["requests"],
        rates=(top,),
        n_plants=params["n_plants"],
        variants=("baseline", "cache+coalesce+pool"),
    )
    for variant in ("baseline", "cache+coalesce+pool"):
        first = result.point(variant, top).fingerprint
        again = recheck.point(variant, top).fingerprint
        if first != again:
            raise AssertionError(
                f"non-deterministic loadtest: {variant}@{top} gave "
                f"{first} then {again}"
            )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "requests": params["requests"],
        "n_plants": params["n_plants"],
        "rates": list(params["rates"]),
        "wall_s": round(wall, 2),
        "points": [
            p.as_dict()
            for pts in result.points.values()
            for p in pts
        ],
        "throughput_speedup_at_max_rate": round(
            result.speedup_at(top), 2
        ),
        "p95_improvement_at_max_rate": round(
            result.p95_improvement_at(top), 2
        ),
        "determinism_ok": True,
    }
    path = out or PROVISION_BENCH_PATH
    trajectory = load_provision_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return record


def load_provision_trajectory(path: Optional[Path] = None) -> list:
    """The recorded provisioning trajectory (empty if absent/corrupt)."""
    path = path or PROVISION_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down sweep (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_provision_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
