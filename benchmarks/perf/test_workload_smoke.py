"""Perf smoke for the trace-driven workload engine.

Same philosophy as :mod:`benchmarks.perf.test_federation_smoke`:
same-run assertions are relative with flake-safe thresholds; absolute
numbers are only checked against the recorded trajectory, and skipped
when no trajectory exists yet.
"""

from __future__ import annotations

import pytest

from benchmarks.perf.workload_bench import load_workload_trajectory
from repro.experiments.megaload import run_megaload

#: Small same-run sweep: finishes in seconds on a loaded CI runner.
_SMOKE = dict(
    seed=7,
    sites=2,
    shard_counts=(1, 2),
    requests_per_site=40,
    determinism_requests=16,
    deadline_s=300.0,
    trace_capacity=20_000,
)


@pytest.fixture(scope="module")
def smoke_sweep():
    return run_megaload(**_SMOKE)


def test_megaload_run_is_deterministic(smoke_sweep):
    """Merged-trace fingerprints must agree across shard counts and
    reproduce across repeats, under bounded tracers."""
    assert smoke_sweep.deterministic, (
        f"fingerprints diverged: {smoke_sweep.fingerprints} "
        f"repeat={smoke_sweep.repeat_fingerprint} "
        f"sketch_equal={smoke_sweep.sketch_equal}"
    )


def test_sketches_merge_exactly_across_shard_counts(smoke_sweep):
    """The merged per-site summary state must be bit-identical at
    every shard count — the exact-merge contract."""
    assert smoke_sweep.sketch_equal, {
        p.shards: p.summary_signature for p in smoke_sweep.points
    }


def test_all_arrivals_accounted(smoke_sweep):
    """Every trace arrival ends as ok or failed — none lost."""
    expected = _SMOKE["sites"] * _SMOKE["requests_per_site"]
    for p in smoke_sweep.points:
        assert p.arrivals == expected
        assert p.ok + p.failed == p.arrivals
        assert p.ok > 0


def test_quantiles_ordered_and_rss_bounded(smoke_sweep):
    """Sketch quantiles are monotone and peak RSS is recorded."""
    for p in smoke_sweep.points:
        assert p.p50_latency_s <= p.p95_latency_s <= p.p99_latency_s
        assert p.peak_rss_mb > 0
        # A smoke run must not approach developer-machine limits.
        assert p.peak_rss_mb < 2048


def test_workload_regression_vs_trajectory(smoke_sweep):
    """Recorded sweeps must keep meeting the acceptance bar.

    Every recorded run must have passed both the determinism and
    exact-merge rechecks, million-rung records must have completed
    the full 1,000,000 requests within developer-machine memory, and
    the same-run single-shard request rate must stay within 2x of the
    recorded best.
    """
    records = load_workload_trajectory()
    if not records:
        pytest.skip("no recorded workload-bench trajectory")
    for rec in records:
        assert rec["deterministic"] is True, (
            f"recorded sweep at {rec.get('timestamp')} failed its "
            f"determinism recheck"
        )
        assert rec["sketch_equal"] is True
    million = [
        rec for rec in records if rec.get("workload") == "million"
    ]
    for rec in million:
        total = sum(p["ok"] + p["failed"] for p in rec["points"]) / len(
            rec["points"]
        )
        assert total == 1_000_000
        assert rec["peak_rss_mb"] < 8192
    best = max(
        (
            point["agg_requests_per_sec"]
            for rec in records
            for point in rec.get("points", [])
            if point.get("shards") == 1
        ),
        default=0.0,
    )
    if best:
        rps = smoke_sweep.point(1).agg_requests_per_sec
        assert rps > best / 2.0, (
            f"single-shard megaload {rps:.0f} req/s is <half the "
            f"recorded best ({best:.0f} req/s)"
        )
