"""Megachaos benchmark: the grid resilience ladder as a trajectory.

Runs the megachaos experiment (see
:mod:`repro.experiments.megachaos`) and appends one record to
``benchmarks/results/BENCH_megachaos.json`` so the availability
ladder (none → faults → failover → admission), the shed/preempt
accounting, the six-dimension grid-scope leak audit and the
1/2/4-shard determinism verdict under faults are tracked across
commits.  Wall-clock time for the full ladder is recorded alongside
so chaos-path overhead regressions show up in the same file.

Run::

    PYTHONPATH=src python -m benchmarks.perf.megachaos_bench           # paper rung
    PYTHONPATH=src python -m benchmarks.perf.megachaos_bench --small   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.megachaos import run_megachaos

__all__ = [
    "MEGACHAOS_BENCH_PATH",
    "run_megachaos_bench",
    "load_megachaos_trajectory",
]

MEGACHAOS_BENCH_PATH = Path(__file__).resolve().parent.parent / (
    "results"
) / "BENCH_megachaos.json"

PAPER_SEED = 2004

#: (sites, shards, requests_per_site, det_shard_counts).
RUNGS = {
    "small": (2, 2, 60, (1, 2)),
    "paper": (4, 4, 150, (1, 2, 4)),
}


def run_megachaos_bench(
    workload: str = "paper", out: Optional[Path] = None
) -> dict:
    """Run one rung; append the record to the trajectory file."""
    sites, shards, requests, det_counts = RUNGS[workload]
    t0 = time.perf_counter()
    result = run_megachaos(
        seed=PAPER_SEED,
        sites=sites,
        shards=shards,
        requests_per_site=requests,
        det_shard_counts=det_counts,
        determinism_requests=40 if workload != "small" else 20,
        deadline_s=None,
    )
    wall_s = time.perf_counter() - t0
    record = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workload": workload,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        # Wall-clock lives only in the bench trajectory — the
        # experiment's own report stays replay-stable without it.
        "ladder_wall_s": round(wall_s, 3),
        "availability_ladder": result.availability_ladder(),
    }
    record.update(result.to_records())
    path = out or MEGACHAOS_BENCH_PATH
    trajectory = load_megachaos_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    print(result.render())
    return record


def load_megachaos_trajectory(path: Optional[Path] = None) -> list:
    """The recorded benchmark trajectory (empty if absent/corrupt)."""
    path = path or MEGACHAOS_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down ladder (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_megachaos_bench(
        workload="small" if args.small else "paper", out=args.out
    )
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
