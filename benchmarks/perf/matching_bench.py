"""Matching-throughput benchmark: naive vs. indexed vs. memoized.

Measures golden-image selection throughput (bids/sec) against
warehouse size for the three matching paths:

* **naive** — brute-force :func:`~repro.core.matching.select_golden`
  over every image (the pre-index reference; still what the
  equivalence tests compare against);
* **indexed** — the warehouse's
  :class:`~repro.core.matchindex.MatchIndex` queried directly
  (bucketed hardware/os rejection + per-profile DAG tests, no memo);
* **memoized** — the full :meth:`~repro.plant.warehouse.VMWarehouse.
  select` path with the per-request memo, the way plants bid.

Each invocation verifies all three paths select the same winner, then
appends one record to ``benchmarks/results/BENCH_matching.json``.

Run::

    PYTHONPATH=src python -m benchmarks.perf.matching_bench          # 10 → 1000
    PYTHONPATH=src python -m benchmarks.perf.matching_bench --small  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.matching import select_golden
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.workloads.requests import MANDRAKE_OS

__all__ = [
    "MATCH_BENCH_PATH",
    "PAPER_SIZES",
    "SMALL_SIZES",
    "build_matching_workload",
    "measure_matching",
    "run_matching_bench",
    "load_matching_trajectory",
]

MATCH_BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / (
    "BENCH_matching.json"
)

#: Warehouse sizes of the full sweep (ISSUE 2 acceptance: ≥5x @ 1000).
PAPER_SIZES: Tuple[int, ...] = (10, 100, 1000)
#: Scaled-down sweep for CI smoke runs.
SMALL_SIZES: Tuple[int, ...] = (10, 50, 200)

PAPER_SEED = 2004
#: Length of the master configuration chain the images prefix.
CHAIN_LEN = 12
#: Distinct request DAGs rotated through per measurement (so the
#: memoized path exercises the memo table, not a single entry).
N_REQUEST_DAGS = 8


def _chain_actions(n: int = CHAIN_LEN) -> List[Action]:
    return [
        Action(f"step{i:02d}", command=f"configure --stage {i}")
        for i in range(n)
    ]


def build_matching_workload(
    n_images: int, seed: int = PAPER_SEED
) -> Tuple[VMWarehouse, List[ConfigDAG], HardwareSpec, str]:
    """A warehouse of ``n_images`` plus rotating request DAGs.

    Images are prefixes of a master configuration chain at varying
    depths (profiles repeat, as clone-and-publish sites produce), with
    ~25% "noise" images that differ in OS, memory or vm-type and are
    rejected by the index's bucket key alone.
    """
    rng = random.Random(seed)
    steps = _chain_actions()
    images: List[GoldenImage] = []
    for i in range(n_images):
        roll = rng.random()
        os_name, memory, vm_type = MANDRAKE_OS, 64, "vmware"
        if roll < 0.10:
            os_name = "windows-xp"
        elif roll < 0.18:
            memory = 512
        elif roll < 0.25:
            vm_type = "uml"
        depth = rng.randrange(0, CHAIN_LEN + 1)
        images.append(
            GoldenImage(
                image_id=f"img-{i:05d}",
                vm_type=vm_type,
                os=os_name,
                hardware=HardwareSpec(memory_mb=memory),
                performed=tuple(steps[:depth]),
                memory_state_mb=float(memory),
            )
        )
    warehouse = VMWarehouse(images)
    dags = []
    for k in range(N_REQUEST_DAGS):
        # Chains of the full master sequence plus a request-specific
        # tail action, so each request DAG has a distinct fingerprint.
        tail = Action(f"request-tail-{k}", command=f"finalize --req {k}")
        dags.append(ConfigDAG.from_sequence(steps + [tail]))
    return warehouse, dags, HardwareSpec(memory_mb=64), MANDRAKE_OS


def _throughput(fn, dags: List[ConfigDAG], bids: int) -> float:
    t0 = time.perf_counter()
    for i in range(bids):
        fn(dags[i % len(dags)])
    wall = time.perf_counter() - t0
    return bids / wall if wall > 0 else float("inf")


def measure_matching(
    n_images: int,
    seed: int = PAPER_SEED,
    naive_bids: Optional[int] = None,
    fast_bids: Optional[int] = None,
) -> Dict[str, float]:
    """Bids/sec for all three paths over one warehouse size."""
    warehouse, dags, hardware, os_name = build_matching_workload(
        n_images, seed
    )
    if naive_bids is None:
        naive_bids = max(5, min(400, 20000 // n_images))
    if fast_bids is None:
        fast_bids = 2000

    # Same winner on every path (spot equivalence, belt-and-braces on
    # top of tests/test_matchindex.py).
    for dag in dags:
        brute, brute_result, _ = select_golden(
            warehouse.images("vmware"), dag, hardware, os_name, "vmware"
        )
        indexed, indexed_result = warehouse._index.select(
            dag, hardware, os_name, "vmware"
        )
        memoized, memo_result = warehouse.select(
            dag, hardware, os_name, "vmware"
        )
        brute_id = brute.image_id if brute else None
        assert (indexed.image_id if indexed else None) == brute_id
        assert (memoized.image_id if memoized else None) == brute_id
        if brute_result is not None:
            assert indexed_result.residual == brute_result.residual
            assert memo_result.residual == brute_result.residual

    naive = _throughput(
        lambda dag: select_golden(
            warehouse.images("vmware"), dag, hardware, os_name, "vmware"
        ),
        dags,
        naive_bids,
    )
    indexed = _throughput(
        lambda dag: warehouse._index.select(
            dag, hardware, os_name, "vmware"
        ),
        dags,
        fast_bids,
    )
    memoized = _throughput(
        lambda dag: warehouse.select(dag, hardware, os_name, "vmware"),
        dags,
        fast_bids,
    )
    return {
        "images": n_images,
        "naive_bids_per_sec": round(naive, 1),
        "indexed_bids_per_sec": round(indexed, 1),
        "memoized_bids_per_sec": round(memoized, 1),
        "indexed_speedup": round(indexed / naive, 2) if naive else None,
        "memoized_speedup": round(memoized / naive, 2) if naive else None,
    }


def run_matching_bench(
    small: bool = False, out: Optional[Path] = None
) -> dict:
    """Sweep warehouse sizes; append the record to the trajectory."""
    sizes = SMALL_SIZES if small else PAPER_SIZES
    points = [measure_matching(n) for n in sizes]
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": "small" if small else "paper",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "points": points,
        "speedup_at_max_size": points[-1]["memoized_speedup"],
    }
    path = out or MATCH_BENCH_PATH
    trajectory = load_matching_trajectory(path)
    trajectory.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return record


def load_matching_trajectory(path: Optional[Path] = None) -> list:
    """The recorded matching trajectory (empty if absent/corrupt)."""
    path = path or MATCH_BENCH_PATH
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, list) else []
    except (OSError, ValueError):
        return []


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="scaled-down sweep (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="trajectory file path"
    )
    args = parser.parse_args()
    record = run_matching_bench(small=args.small, out=args.out)
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
