"""Wall-clock and events/sec micro-harness for the performance layer."""
