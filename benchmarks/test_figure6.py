"""Benchmark: Figure 6 — cloning time vs. VM sequence number.

The paper's observation: cloning times grow once plants host many VMs,
most noticeably in the 64 MB (16 clones/host) and 256 MB (5 clones/
host) runs, while the 32 MB run stays flat.  Checked via head/tail
ratios and trend slopes.
"""

from repro.experiments.figure6 import run_figure6


def test_figure6(benchmark, paper_suite, record_table):
    result = benchmark.pedantic(
        lambda: run_figure6(suite=paper_suite), rounds=1, iterations=1
    )
    record_table("figure6_cloning_vs_sequence", result.render())

    flat = result.head_tail_ratio("32 MB")
    grow64 = result.head_tail_ratio("64 MB")
    grow256 = result.head_tail_ratio("256 MB")
    # 32 MB stays flat; the bigger machines climb.
    assert 0.85 < flat < 1.2
    assert grow64 > 1.25
    assert grow256 > 1.25
    assert result.trend_slope("64 MB") > 0
    assert result.trend_slope("256 MB") > 0

    benchmark.extra_info.update(
        {
            "head_tail_32mb": round(flat, 2),
            "head_tail_64mb": round(grow64, 2),
            "head_tail_256mb": round(grow256, 2),
        }
    )
