"""Benchmark-harness fixtures: shared paper suite + table reporting.

Every benchmark regenerates one of the paper's tables/figures; the
rendered text is collected here and echoed in the terminal summary
(and written under ``benchmarks/results/``) so ``pytest benchmarks/
--benchmark-only`` produces the same rows/series the paper reports.

The session-scoped ``paper_suite`` fixture goes through the on-disk
result cache (see :mod:`repro.experiments.cache`): the first session
simulates and stores the three creation runs, later sessions load
them in milliseconds.  Set ``REPRO_NO_CACHE=1`` to force a fresh
simulation, and ``REPRO_CACHE_DIR`` to relocate the store.  Cache
misses fan out across a process pool on multi-core hosts; results
are bit-identical either way.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.runner import run_creation_suite

#: Seed used by every paper-reproduction benchmark.
PAPER_SEED = 2004

_TABLES: "dict[str, str]" = {}
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def result_cache():
    """The on-disk experiment result cache (env-configurable)."""
    return ResultCache()


@pytest.fixture(scope="session")
def paper_suite(result_cache):
    """The three Section 4.2 creation runs, computed once per session.

    Cache hits skip simulation entirely; misses run the three
    independent streams in parallel where the host allows.
    """
    return run_creation_suite(
        seed=PAPER_SEED, parallel=True, cache=result_cache
    )


def _atomic_write(path: Path, text: str) -> None:
    """Write-to-temp + rename so readers never see a truncated file."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@pytest.fixture
def record_table():
    """Callable that registers a rendered paper table for reporting."""

    def _record(name: str, text: str) -> None:
        _TABLES[name] = text
        _RESULTS_DIR.mkdir(exist_ok=True)
        _atomic_write(_RESULTS_DIR / f"{name}.txt", text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    for name in sorted(_TABLES):
        terminalreporter.write_sep("=", f"paper artifact: {name}")
        for line in _TABLES[name].splitlines():
            terminalreporter.write_line(line)
