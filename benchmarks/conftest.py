"""Benchmark-harness fixtures: shared paper suite + table reporting.

Every benchmark regenerates one of the paper's tables/figures; the
rendered text is collected here and echoed in the terminal summary
(and written under ``benchmarks/results/``) so ``pytest benchmarks/
--benchmark-only`` produces the same rows/series the paper reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import run_creation_suite

#: Seed used by every paper-reproduction benchmark.
PAPER_SEED = 2004

_TABLES: "dict[str, str]" = {}
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_suite():
    """The three Section 4.2 creation runs, computed once per session."""
    return run_creation_suite(seed=PAPER_SEED)


@pytest.fixture
def record_table():
    """Callable that registers a rendered paper table for reporting."""

    def _record(name: str, text: str) -> None:
        _TABLES[name] = text
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    for name in sorted(_TABLES):
        terminalreporter.write_sep("=", f"paper artifact: {name}")
        for line in _TABLES[name].splitlines():
            terminalreporter.write_line(line)
