"""Benchmark: Figure 5 — VM cloning latency distributions.

Cloning time is PPP clone request → resume completion.  Shape checks:
means ordered by memory size and the 256 MB average near the paper's
~52 s (210 s full copy / "around 4x").
"""

from repro.experiments.figure5 import run_figure5


def test_figure5(benchmark, paper_suite, record_table):
    result = benchmark.pedantic(
        lambda: run_figure5(suite=paper_suite), rounds=1, iterations=1
    )
    record_table("figure5_cloning_latency", result.render())

    s32 = result.summaries["32 MB"]
    s64 = result.summaries["64 MB"]
    s256 = result.summaries["256 MB"]
    assert s32.mean < s64.mean < s256.mean
    # Paper anchors: 32 MB clones far under a minute; 256 MB ≈ 52 s.
    assert s32.mean < 25
    assert 35 < s256.mean < 70
    # Larger machines show larger variance (paper's observation).
    assert s256.std > s32.std

    benchmark.extra_info.update(
        {
            "clone_mean_32mb_s": round(s32.mean, 1),
            "clone_mean_64mb_s": round(s64.mean, 1),
            "clone_mean_256mb_s": round(s256.mean, 1),
            "paper_clone_mean_256mb_s": 52.5,
        }
    )
