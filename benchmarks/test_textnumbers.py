"""Benchmark: the Section 1/4.3 in-text numbers.

* creation in 17–85 s (range), averaging 25–48 s;
* the 2 GB / 16-file golden disk takes 210 s to copy in full —
  "around 4 times slower than the average cloning time of the 256 MB
  VM".
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.textnumbers import run_textnumbers


def test_in_text_numbers(benchmark, paper_suite, record_table):
    result = benchmark.pedantic(
        lambda: run_textnumbers(seed=PAPER_SEED, suite=paper_suite),
        rounds=1,
        iterations=1,
    )
    record_table("textnumbers_section43", result.render())

    # Range shape (paper: 17–85 s): tens of seconds to ~1.5 minutes.
    assert 10 < result.creation_min < 30
    assert 60 < result.creation_max < 120
    # Averages ordered and in the paper's band (25–48, loosely).
    means = result.mean_by_memory
    assert means[32] < means[64] < means[256]
    assert 18 < means[32] < 32
    # Full-copy time near 210 s and the ~4x ratio.
    assert 170 < result.full_copy_clone_time < 260
    assert 3.0 < result.copy_over_clone_ratio < 5.5

    benchmark.extra_info.update(
        {
            "creation_range_s": (
                f"{result.creation_min:.0f}-{result.creation_max:.0f}"
            ),
            "paper_creation_range_s": "17-85",
            "full_copy_s": round(result.full_copy_clone_time, 0),
            "paper_full_copy_s": 210,
            "copy_over_clone_ratio": round(
                result.copy_over_clone_ratio, 1
            ),
            "paper_ratio": "~4x",
        }
    )
