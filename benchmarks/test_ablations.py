"""Benchmarks: ablations of the design choices DESIGN.md calls out.

* link-based cloning vs. explicit full copy;
* partial DAG matching vs. bare-OS images (In-VIGO workspace DAG);
* speculative pre-creation of clones (future-work feature);
* Section 3.4 cost model vs. the memory-headroom prototype model.
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.ablations import (
    run_clone_mode_ablation,
    run_cost_model_ablation,
    run_matching_ablation,
    run_speculative_ablation,
)


def test_ablation_clone_mode(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_clone_mode_ablation(seed=PAPER_SEED, count=8),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_clone_mode", result.render())
    # The mechanism behind the paper's 210 s vs 52 s comparison.
    assert result.speedup > 3.0
    assert result.copy_creation.mean > result.link_creation.mean
    benchmark.extra_info["link_speedup"] = round(result.speedup, 1)


def test_ablation_partial_matching(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_matching_ablation(seed=PAPER_SEED, count=8),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_partial_matching", result.render())
    assert result.residual_with == 6  # D..I of Figure 3
    assert result.residual_without == 9  # the whole DAG
    assert result.with_matching.mean < result.without_matching.mean
    benchmark.extra_info["actions_saved"] = (
        result.residual_without - result.residual_with
    )


def test_ablation_speculative_precreation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_speculative_ablation(seed=PAPER_SEED, count=8),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_speculative", result.render())
    assert result.pool_hits == 8
    assert result.latency_hidden > 0.4
    benchmark.extra_info["latency_hidden"] = (
        f"{result.latency_hidden:.0%}"
    )


def test_ablation_cost_model(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_cost_model_ablation(
            seed=PAPER_SEED, domains=4, vms_per_domain=8
        ),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_cost_model", result.render())
    # The Section 3.4 model economizes the scarce host-only networks.
    assert (
        result.fresh_networks["network+compute"]
        < result.fresh_networks["memory-headroom"]
    )
    assert result.fresh_networks["network+compute"] == 4
    benchmark.extra_info.update(result.fresh_networks)


def test_ablation_state_cache(benchmark, record_table):
    from repro.experiments.ablations import run_state_cache_ablation

    result = benchmark.pedantic(
        lambda: run_state_cache_ablation(seed=PAPER_SEED, count=8),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_state_cache", result.render())
    # Re-reading the golden state locally beats the NFS path once warm.
    assert result.steady_state_speedup > 1.15
    benchmark.extra_info["steady_state_speedup"] = round(
        result.steady_state_speedup, 2
    )
