"""Benchmark: the Section 4.3 UML production-line study.

"For a 32 MB UML VM that is instantiated via a full reboot, the
average cloning time is 76 s."  Also checks the structural claim: the
boot-based UML line is far slower than VMware's resume-based cloning
for the same golden-machine size.
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.uml import run_uml


def test_uml_boot_clone(benchmark, paper_suite, record_table):
    result = benchmark.pedantic(
        lambda: run_uml(seed=PAPER_SEED, count=40), rounds=1, iterations=1
    )
    record_table("uml_boot_clone", result.render())

    mean = result.clone_summary.mean
    assert 60 < mean < 95  # paper: 76 s
    # Boot-based UML cloning ≫ VMware resume-based cloning at 32 MB.
    vmware_mean = sum(paper_suite[32].clone_times) / len(
        paper_suite[32].clone_times
    )
    assert mean > 3 * vmware_mean

    benchmark.extra_info.update(
        {
            "uml_clone_mean_s": round(mean, 1),
            "paper_uml_clone_mean_s": 76.0,
            "vmware_32mb_clone_mean_s": round(vmware_mean, 1),
        }
    )
