"""Benchmark: Figure 4 — overall VM creation latency distributions.

Regenerates the paper's three creation experiments (128 requests at
32 MB and 64 MB, 40 at 256 MB, sequential through VMShop over 8
plants) and prints the normalized latency distribution per golden-
machine size.  Shape checks: larger memory ⇒ larger latency; the
32 MB mode sits near the paper's 25 s bin.
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import run_creation_suite


def test_figure4(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_figure4(suite=run_creation_suite(seed=PAPER_SEED)),
        rounds=1,
        iterations=1,
    )
    record_table("figure4_creation_latency", result.render())

    h32 = result.histograms["32 MB"]
    h64 = result.histograms["64 MB"]
    h256 = result.histograms["256 MB"]
    # Paper shape: means ordered by memory size, 32 MB mode near 25 s.
    assert (
        h32.mean_estimate() < h64.mean_estimate() < h256.mean_estimate()
    )
    assert h32.mode_center in (15, 25, 35)
    assert h256.mode_center >= 45
    # Success counts in the paper's regime (121/128, 124/128, 40/40).
    assert 115 <= h32.total <= 128
    assert 115 <= h64.total <= 128
    assert h256.total == 40

    benchmark.extra_info.update(
        {
            "mean_32mb_s": round(result.summaries["32 MB"].mean, 1),
            "mean_64mb_s": round(result.summaries["64 MB"].mean, 1),
            "mean_256mb_s": round(result.summaries["256 MB"].mean, 1),
            "paper_mean_range_s": "25-48",
        }
    )
