"""Benchmarks: extension experiments beyond the paper's evaluation.

* **SBUML checkpoint-resume** — the "on-going experimental studies"
  of Section 4.3: cloning UML VMs from snapshots instead of booting;
* **request concurrency** — the paper's methodology is sequential;
  this sweeps in-flight limits and shows the NFS-contention /
  makespan trade-off;
* **migration** — Section 6 future work: per-size migration latency
  and pressure-relieving rebalancing.
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.concurrency import run_concurrency
from repro.experiments.migration_exp import run_migration
from repro.experiments.uml import run_sbuml


def test_extension_sbuml(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_sbuml(seed=PAPER_SEED, count=20),
        rounds=1,
        iterations=1,
    )
    record_table("extension_sbuml", result.render())
    # Resume-from-snapshot removes the ~72 s boot.
    assert result.speedup > 3.0
    assert result.resume.mean < result.boot.minimum
    benchmark.extra_info["sbuml_speedup"] = round(result.speedup, 1)


def test_extension_concurrency(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_concurrency(
            seed=PAPER_SEED, memory_mb=64, requests=24, levels=(1, 4, 8)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("extension_concurrency", result.render())
    # Contention slows individual clones monotonically ...
    assert (
        result.cloning[1].mean
        < result.cloning[4].mean
        < result.cloning[8].mean
    )
    # ... while the batch still finishes sooner.
    assert result.makespan[8] < result.makespan[4] < result.makespan[1]
    benchmark.extra_info.update(
        {
            "makespan_seq_s": round(result.makespan[1], 0),
            "makespan_8way_s": round(result.makespan[8], 0),
        }
    )


def test_extension_migration(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_migration(seed=PAPER_SEED), rounds=1, iterations=1
    )
    record_table("extension_migration", result.render())
    lat = result.latency_by_memory
    assert lat[32] < lat[64] < lat[256]
    # Rebalancing takes the source out of the pressure regime.
    assert result.pressure_before > 1.5
    assert result.pressure_after < 1.1
    assert result.clone_after < 0.7 * result.clone_before
    benchmark.extra_info.update(
        {
            "migrate_256mb_s": round(lat[256], 1),
            "pressure_relief": (
                f"{result.pressure_before:.2f}->"
                f"{result.pressure_after:.2f}"
            ),
        }
    )


def test_extension_scalability(benchmark, record_table):
    from repro.experiments.scalability import run_scalability

    result = benchmark.pedantic(
        lambda: run_scalability(
            seed=PAPER_SEED, sizes=(4, 16, 32), requests=8
        ),
        rounds=1,
        iterations=1,
    )
    record_table("extension_scalability", result.render())
    flat32, brok32 = result.calls_per_create[32]
    # Flat bidding talks to every plant; brokers cut it drastically
    # without hurting placement latency.
    assert flat32 == 33.0
    assert brok32 < flat32 / 3
    flat_lat, brok_lat = result.latency[32]
    assert brok_lat < flat_lat * 1.2
    benchmark.extra_info.update(
        {"flat_msgs_32": flat32, "brokered_msgs_32": brok32}
    )


def test_extension_resilience(benchmark, record_table):
    from repro.experiments.resilience import run_resilience

    result = benchmark.pedantic(
        lambda: run_resilience(
            seed=PAPER_SEED, requests=24, failure_prob=0.25
        ),
        rounds=1,
        iterations=1,
    )
    record_table("extension_resilience", result.render())
    surface_ok, surface_lat = result.outcomes["surface"]
    retry_ok, retry_lat = result.outcomes["retry"]
    # Retrying other bidders converts most failures into successes,
    # at a modest latency premium.
    assert retry_ok > surface_ok
    assert retry_ok >= 0.9 * result.requests
    assert retry_lat < 2.0 * surface_lat
    assert result.recovered > 0
    benchmark.extra_info.update(
        {
            "surface_successes": surface_ok,
            "retry_successes": retry_ok,
        }
    )


def test_extension_warehouse_replicas(benchmark, record_table):
    from repro.experiments.concurrency import run_warehouse_replicas

    result = benchmark.pedantic(
        lambda: run_warehouse_replicas(
            seed=PAPER_SEED, requests=24, level=8
        ),
        rounds=1,
        iterations=1,
    )
    record_table("extension_warehouse_replicas", result.render())
    # More replicas → faster clones and shorter makespan under load.
    assert result.cloning[2].mean < result.cloning[1].mean
    assert result.cloning[4].mean <= result.cloning[2].mean
    assert result.makespan[4] < result.makespan[1]
    benchmark.extra_info.update(
        {
            "clone_mean_1rep": round(result.cloning[1].mean, 1),
            "clone_mean_4rep": round(result.cloning[4].mean, 1),
        }
    )
