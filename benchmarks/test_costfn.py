"""Benchmark: the Section 3.4 cost-function illustration.

Two plants, network cost 50, compute cost 4/VM: the first plant keeps
winning until it hosts 13 VMs; the 14th request switches to the second
plant and allocates another host-only network.
"""

from benchmarks.conftest import PAPER_SEED
from repro.experiments.costfn import run_costfn


def test_cost_function_crossover(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_costfn(seed=PAPER_SEED, requests=16),
        rounds=1,
        iterations=1,
    )
    record_table("costfn_section34", result.render())

    assert result.crossover == 14  # exactly the paper's arithmetic
    first = result.first_plant
    assert all(
        plant == first for _, plant, _, _ in result.decisions[:13]
    )
    # The 13th request was still cheaper on the loaded plant (48 < 50).
    _, _, winning_bid, bids = result.decisions[12]
    assert winning_bid == 48.0
    # The 14th paid the other plant's network cost.
    _, plant14, bid14, _ = result.decisions[13]
    assert plant14 != first and bid14 == 50.0

    benchmark.extra_info.update(
        {"crossover_request": result.crossover, "paper_crossover": 14}
    )
